#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace fs2::sched {

/// A load profile maps elapsed run time to a target load level in [0, 1] —
/// the generalization of the paper's fixed `--load`/period square wave
/// (Sec. III: power oscillation and voltage-regulator experiments). Workers
/// quantize time into modulation windows of `--period` length and ask the
/// profile for the duty fraction of each window, so a profile only needs to
/// be a pure function of time. Implementations must be thread-safe for
/// concurrent `load_at` calls (all workers share one instance) and
/// deterministic: the same (t, profile) pair always yields the same level,
/// which keeps runs reproducible from a seed.
class LoadProfile {
 public:
  virtual ~LoadProfile() = default;

  /// Target load fraction at elapsed time `t_s` (seconds since the shared
  /// run epoch). Results are clamped to [0, 1] by callers; implementations
  /// should already stay inside the range. `t_s` is never negative.
  virtual double load_at(double t_s) const = 0;

  /// Short machine-readable kind tag ("sine", "trace", ...).
  virtual const char* kind() const = 0;

  /// Human-readable one-liner for logs and run headers, e.g.
  /// "sine: 10 % .. 90 % over 2 s".
  virtual std::string describe() const = 0;

  /// True when load_at is the same for every t — lets hot paths skip
  /// per-window profile evaluation and idle phases entirely at full load.
  virtual bool constant() const { return false; }

  /// True when the level is driven externally while the run executes (the
  /// closed-loop controller's ControlledProfile) instead of being a pure
  /// function of time. Workers re-sample live profiles mid-window so a
  /// controller command takes effect within one kernel chunk, not only at
  /// the next window boundary.
  virtual bool live() const { return false; }
};

using ProfilePtr = std::shared_ptr<const LoadProfile>;

/// Fixed load level: the classic `--load` duty cycle once the worker PWM
/// quantizes it into busy/idle windows.
class ConstantProfile final : public LoadProfile {
 public:
  explicit ConstantProfile(double load);
  double load_at(double) const override { return load_; }
  const char* kind() const override { return "constant"; }
  std::string describe() const override;
  bool constant() const override { return true; }

 private:
  double load_;
};

/// Alternates between two load levels: `high` for `duty * period`, then
/// `low` for the rest of the period. The paper's oscillation workload
/// (low=0, high=1) is the default shape.
class SquareProfile final : public LoadProfile {
 public:
  SquareProfile(double low, double high, double period_s, double duty = 0.5);
  double load_at(double t_s) const override;
  const char* kind() const override { return "square"; }
  std::string describe() const override;

 private:
  double low_, high_, period_s_, duty_;
};

/// Sinusoidal sweep between `low` and `high`. Phase-shifted so the run
/// starts at `low` and peaks at period/2 — a gentle ramp-in rather than an
/// immediate mid-level jump.
class SineProfile final : public LoadProfile {
 public:
  SineProfile(double low, double high, double period_s);
  double load_at(double t_s) const override;
  const char* kind() const override { return "sine"; }
  std::string describe() const override;

 private:
  double low_, high_, period_s_;
};

/// Linear ramp from `from` to `to` over `duration`, holding `to` afterwards.
/// Descending ramps (from > to) are allowed.
class RampProfile final : public LoadProfile {
 public:
  RampProfile(double from, double to, double duration_s);
  double load_at(double t_s) const override;
  const char* kind() const override { return "ramp"; }
  std::string describe() const override;

 private:
  double from_, to_, duration_s_;
};

/// Random bursts: each window of `window_s` seconds is independently `peak`
/// with probability `prob`, else `base`. The decision for window k is a pure
/// hash of (seed, k), so every worker sees the same burst pattern and a rerun
/// with the same seed reproduces it exactly.
class BurstProfile final : public LoadProfile {
 public:
  BurstProfile(double base, double peak, double window_s, double prob, std::uint64_t seed);
  double load_at(double t_s) const override;
  const char* kind() const override { return "bursts"; }
  std::string describe() const override;

 private:
  double base_, peak_, window_s_, prob_;
  std::uint64_t seed_;
};

/// Plays back a recorded load trace: a sorted list of (time, load)
/// breakpoints with step-hold semantics — the level set at time T holds
/// until the next breakpoint. Before the first breakpoint the first level
/// applies. After the last breakpoint the trace either holds the last level
/// forever or, with `loop`, wraps around at `span_s` (defaulting to the last
/// breakpoint time plus the preceding step length, so the final segment
/// plays out with its natural duration).
class TraceProfile final : public LoadProfile {
 public:
  struct Breakpoint {
    double time_s = 0.0;
    double load = 0.0;
  };

  TraceProfile(std::vector<Breakpoint> points, bool loop, double span_s = 0.0);

  /// Parse a two-column CSV ("time_s,load_pct", '#' comments and an optional
  /// header row allowed). Throws fs2::ConfigError on malformed rows,
  /// unsorted times, or out-of-range loads.
  static TraceProfile from_csv(const std::string& path, bool loop, double span_s = 0.0);

  double load_at(double t_s) const override;
  const char* kind() const override { return "trace"; }
  std::string describe() const override;

  double span_s() const { return span_s_; }
  const std::vector<Breakpoint>& breakpoints() const { return points_; }

 private:
  std::vector<Breakpoint> points_;
  bool loop_;
  double span_s_;
};

/// Build a profile from a CLI spec string:
///
///   KIND[:param=value,param=value,...]
///
/// Kinds and parameters (loads are percentages, like --load; times are
/// seconds):
///
///   constant[:load=P]                              default: --load
///   square[:low=P,high=P,period=S,duty=F]          defaults: 0, 100, 10x
///                                                  --period, 0.5
///   sine[:low=P,high=P,period=S]                   defaults: 0, 100, 10x --period
///   ramp[:from=P,to=P,duration=S]                  defaults: 0, 100, 60
///   bursts[:base=P,peak=P,window=S,prob=P,seed=N]  defaults: 20, 100, 1, 25, 5eed
///   trace[:file=PATH,loop=0|1,span=S]              file required
///
/// A bare first parameter without '=' is shorthand for the kind's primary
/// parameter: `constant:30` = `constant:load=30`, `trace:loads.csv` =
/// `trace:file=loads.csv`. Throws fs2::ConfigError on unknown kinds,
/// unknown or malformed parameters, and out-of-range values.
ProfilePtr parse_profile(const std::string& spec, double default_load,
                         double default_period_s);

}  // namespace fs2::sched
