#include "sched/phase_clock.hpp"

#include <cmath>

namespace fs2::sched {

std::int64_t PhaseClock::window_index(double t_s, double period_s) {
  return static_cast<std::int64_t>(std::floor(t_s / period_s));
}

double PhaseClock::window_start(double t_s, double period_s) {
  return static_cast<double>(window_index(t_s, period_s)) * period_s;
}

}  // namespace fs2::sched
