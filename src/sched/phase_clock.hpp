#pragma once

#include <chrono>
#include <cstdint>

namespace fs2::sched {

/// Shared monotonic time base for load modulation. Every worker derives its
/// busy/idle windows from the same epoch instead of its own clock reads, so
/// low/high phases stay in lockstep across threads for arbitrarily long runs
/// (the un-anchored per-worker arithmetic the seed used drifts apart as
/// scheduling noise accumulates). The orchestrator restarts the clock once
/// when it releases the workers; workers only ever read it.
class PhaseClock {
 public:
  using Clock = std::chrono::steady_clock;

  PhaseClock() : epoch_(Clock::now()) {}

  /// Re-anchor the epoch to now. Not thread-safe against concurrent
  /// elapsed() calls — call before releasing readers (the ThreadManager
  /// restarts it before the start flag's release-store, which orders the
  /// write for every worker).
  void restart() { epoch_ = Clock::now(); }

  /// Anchor the epoch to an explicit instant — the cluster layer's epoch
  /// injection: every node of a coordinated run anchors to the SAME
  /// (clock-offset-corrected) moment, so modulation windows and phase
  /// transitions fire in lockstep across machines, not just across the
  /// threads of one process. The instant may be in the future (workers
  /// then see negative elapsed time until it arrives — callers gate the
  /// start on it) or the past. Same thread-safety contract as restart().
  void restart_at(Clock::time_point epoch) { epoch_ = epoch; }

  /// Seconds since the epoch.
  double elapsed() const {
    return std::chrono::duration<double>(Clock::now() - epoch_).count();
  }

  Clock::time_point epoch() const { return epoch_; }

  /// Index of the modulation window containing time `t_s` (window k spans
  /// [k*period, (k+1)*period)).
  static std::int64_t window_index(double t_s, double period_s);

  /// Start time of the window containing `t_s`.
  static double window_start(double t_s, double period_s);

 private:
  Clock::time_point epoch_;
};

}  // namespace fs2::sched
