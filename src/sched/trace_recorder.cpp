#include "sched/trace_recorder.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"

namespace fs2::sched {

void TraceRecorder::record(double t_s, double level) {
  if (!(t_s >= 0.0)) return;
  const double clamped = std::clamp(level, 0.0, 1.0);
  if (!points_.empty()) {
    const TraceProfile::Breakpoint& last = points_.back();
    if (t_s <= last.time_s) return;                   // out of order / duplicate tick
    if (std::abs(clamped - last.load) < 0.005) return;  // below meter jitter
  }
  points_.push_back(TraceProfile::Breakpoint{t_s, clamped});
}

void TraceRecorder::write_header(std::ostream& out) {
  out << "# fs2 recorded load trace (--record-trace); replay with\n"
         "#   --load-profile trace:file=THIS_FILE\n"
         "time_s,load_pct\n";
}

void TraceRecorder::stream_rows(std::ostream& out, std::size_t* written) const {
  if (*written >= points_.size()) return;
  // Fixed-point microsecond timestamps: %g's significant-digit rounding
  // would collapse close breakpoints into equal times once a campaign runs
  // for hours, and from_csv rejects non-increasing times at replay.
  for (; *written < points_.size(); ++*written)
    out << strings::format("%.6f,%.6g\n", points_[*written].time_s,
                           points_[*written].load * 100.0);
  out.flush();  // survive a mid-run kill
}

void TraceRecorder::flush_rows(std::ostream& out) {
  if (flushed_ >= points_.size()) return;
  stream_rows(out, &flushed_);
  // Release everything but the newest breakpoint (the reference record()
  // compares the next level change against).
  points_.erase(points_.begin(), points_.end() - 1);
  flushed_ = points_.size();  // == 1, and already on disk
}

void TraceRecorder::write_csv(std::ostream& out) const {
  write_header(out);
  std::size_t written = 0;
  stream_rows(out, &written);
}

void TraceSink::on_channel(telemetry::ChannelId id, const telemetry::ChannelInfo& info) {
  if (info.name == channel_name_) channel_ = id;
}

void TraceSink::on_sample(telemetry::ChannelId id, const telemetry::Sample& sample) {
  if (id != channel_) return;
  recorder_->record(phase_.time_offset_s + sample.time_s, sample.value);
  if (out_ != nullptr) recorder_->flush_rows(*out_);
}

void TraceSink::on_finish() {
  if (out_ != nullptr) recorder_->flush_rows(*out_);
}

}  // namespace fs2::sched
