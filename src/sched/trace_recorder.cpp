#include "sched/trace_recorder.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"

namespace fs2::sched {

void TraceRecorder::record(double t_s, double level) {
  if (!(t_s >= 0.0)) return;
  const double clamped = std::clamp(level, 0.0, 1.0);
  if (!points_.empty()) {
    const TraceProfile::Breakpoint& last = points_.back();
    if (t_s <= last.time_s) return;                   // out of order / duplicate tick
    if (std::abs(clamped - last.load) < 0.005) return;  // below meter jitter
  }
  points_.push_back(TraceProfile::Breakpoint{t_s, clamped});
}

void TraceRecorder::write_header(std::ostream& out) {
  out << "# fs2 recorded load trace (--record-trace); replay with\n"
         "#   --load-profile trace:file=THIS_FILE\n"
         "time_s,load_pct\n";
}

void TraceRecorder::stream_rows(std::ostream& out, std::size_t* written) const {
  if (*written >= points_.size()) return;
  // Fixed-point microsecond timestamps: %g's significant-digit rounding
  // would collapse close breakpoints into equal times once a campaign runs
  // for hours, and from_csv rejects non-increasing times at replay.
  for (; *written < points_.size(); ++*written)
    out << strings::format("%.6f,%.6g\n", points_[*written].time_s,
                           points_[*written].load * 100.0);
  out.flush();  // survive a mid-run kill
}

void TraceRecorder::write_csv(std::ostream& out) const {
  write_header(out);
  std::size_t written = 0;
  stream_rows(out, &written);
}

}  // namespace fs2::sched
