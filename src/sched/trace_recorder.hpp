#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "sched/load_profile.hpp"
#include "telemetry/sample_sink.hpp"

namespace fs2::sched {

/// Records the achieved load-level series of a run and writes it in the
/// trace-CSV format TraceProfile::from_csv consumes ("time_s,load_pct"),
/// closing the record -> replay loop: a closed-loop run against a power
/// setpoint records the duty cycle the controller converged to, and a later
/// open-loop `--load-profile trace:file=...` replays that power profile on a
/// machine without the metric (or the controller) available.
///
/// Consecutive samples at the same level collapse into one breakpoint
/// (step-hold semantics make them redundant), so a constant plateau costs
/// one row regardless of the sampling rate.
class TraceRecorder {
 public:
  /// Record the level (a fraction in [0, 1]) in effect from `t_s` on.
  /// Out-of-order or duplicate times are ignored; so are level changes
  /// below 0.5 % (meter jitter).
  void record(double t_s, double level);

  bool empty() const { return points_.empty(); }
  const std::vector<TraceProfile::Breakpoint>& breakpoints() const { return points_; }

  /// Write the trace CSV ("# fs2 recorded trace" comment, header row,
  /// one breakpoint per line with loads in percent). Callers own the
  /// stream — the CLI opens its --record-trace file before the stress run
  /// starts so a bad path fails fast.
  void write_csv(std::ostream& out) const;

  /// The comment block + column header alone — written right after opening
  /// the file so rows can then be streamed incrementally.
  static void write_header(std::ostream& out);

  /// Append breakpoints not yet written, advancing `*written` (start at 0)
  /// and flushing when anything was emitted. Long real-time runs stream
  /// rows as they happen so an interrupted run keeps its trace up to the
  /// last level change instead of losing the whole file.
  void stream_rows(std::ostream& out, std::size_t* written) const;

  /// Streaming variant that also RELEASES the written rows: everything but
  /// the newest breakpoint (record() still needs it for the collapse and
  /// monotonicity comparisons) is erased once on disk, so a week-long
  /// streamed trace holds O(1) breakpoints in memory instead of one per
  /// level change. Do not mix with stream_rows/write_csv on the same
  /// recorder — pruned rows cannot be written twice.
  void flush_rows(std::ostream& out);

 private:
  std::vector<TraceProfile::Breakpoint> points_;
  std::size_t flushed_ = 0;  ///< prefix of points_ already written by flush_rows
};

/// Telemetry-bus adapter for --record-trace: subscribes to one channel
/// (the achieved load level), feeds its samples — shifted to campaign time
/// — into a TraceRecorder, and streams newly collapsed breakpoints to the
/// output right away so an interrupted run keeps its trace. Memory stays
/// bounded by the breakpoint-collapsing recorder, and the run modes no
/// longer need a separate record-the-load-series code path.
class TraceSink : public telemetry::SampleSink {
 public:
  /// `out` may be null (record only, no streaming — tests).
  TraceSink(std::string channel_name, TraceRecorder* recorder, std::ostream* out)
      : channel_name_(std::move(channel_name)), recorder_(recorder), out_(out) {}

  void on_channel(telemetry::ChannelId id, const telemetry::ChannelInfo& info) override;
  void on_phase_begin(const telemetry::PhaseInfo& phase) override { phase_ = phase; }
  void on_sample(telemetry::ChannelId id, const telemetry::Sample& sample) override;
  void on_finish() override;

 private:
  static constexpr telemetry::ChannelId kUnmatched = static_cast<telemetry::ChannelId>(-1);
  std::string channel_name_;
  TraceRecorder* recorder_;
  std::ostream* out_;
  telemetry::PhaseInfo phase_;
  telemetry::ChannelId channel_ = kUnmatched;
};

}  // namespace fs2::sched
