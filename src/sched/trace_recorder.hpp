#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "sched/load_profile.hpp"

namespace fs2::sched {

/// Records the achieved load-level series of a run and writes it in the
/// trace-CSV format TraceProfile::from_csv consumes ("time_s,load_pct"),
/// closing the record -> replay loop: a closed-loop run against a power
/// setpoint records the duty cycle the controller converged to, and a later
/// open-loop `--load-profile trace:file=...` replays that power profile on a
/// machine without the metric (or the controller) available.
///
/// Consecutive samples at the same level collapse into one breakpoint
/// (step-hold semantics make them redundant), so a constant plateau costs
/// one row regardless of the sampling rate.
class TraceRecorder {
 public:
  /// Record the level (a fraction in [0, 1]) in effect from `t_s` on.
  /// Out-of-order or duplicate times are ignored; so are level changes
  /// below 0.5 % (meter jitter).
  void record(double t_s, double level);

  bool empty() const { return points_.empty(); }
  const std::vector<TraceProfile::Breakpoint>& breakpoints() const { return points_; }

  /// Write the trace CSV ("# fs2 recorded trace" comment, header row,
  /// one breakpoint per line with loads in percent). Callers own the
  /// stream — the CLI opens its --record-trace file before the stress run
  /// starts so a bad path fails fast.
  void write_csv(std::ostream& out) const;

  /// The comment block + column header alone — written right after opening
  /// the file so rows can then be streamed incrementally.
  static void write_header(std::ostream& out);

  /// Append breakpoints not yet written, advancing `*written` (start at 0)
  /// and flushing when anything was emitted. Long real-time runs stream
  /// rows as they happen so an interrupted run keeps its trace up to the
  /// last level change instead of losing the whole file.
  void stream_rows(std::ostream& out, std::size_t* written) const;

 private:
  std::vector<TraceProfile::Breakpoint> points_;
};

}  // namespace fs2::sched
