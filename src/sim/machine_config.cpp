#include "sim/machine_config.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fs2::sim {

MachineConfig MachineConfig::named(const std::string& sku) {
  if (sku == "zen2") return zen2_epyc7502_2s();
  if (sku == "haswell") return haswell_e5_2680v3_2s();
  if (sku == "haswell-gpu") return haswell_e5_2680v3_2s(4);
  throw ConfigError("unknown machine SKU '" + sku + "' (zen2, haswell, haswell-gpu)");
}

double MachineConfig::volts_at(double mhz) const {
  if (pstates.empty()) throw Error("MachineConfig: no P-states defined");
  if (mhz <= pstates.front().mhz) return pstates.front().volts;
  if (mhz >= pstates.back().mhz) return pstates.back().volts;
  for (std::size_t i = 1; i < pstates.size(); ++i) {
    if (mhz <= pstates[i].mhz) {
      const PState& lo = pstates[i - 1];
      const PState& hi = pstates[i];
      const double t = (mhz - lo.mhz) / (hi.mhz - lo.mhz);
      return lo.volts + t * (hi.volts - lo.volts);
    }
  }
  return pstates.back().volts;
}

MachineConfig MachineConfig::zen2_epyc7502_2s() {
  MachineConfig cfg;
  cfg.name = "2x AMD EPYC 7502 (Zen 2, Table II)";
  cfg.sockets = 2;
  cfg.cores_per_socket = 32;
  cfg.smt = 2;
  // Table II: available frequencies 1500, 2200, 2500 MHz (nominal).
  // Server Rome parts run a narrow voltage band across P-states.
  cfg.pstates = {{1500.0, 1.00}, {2200.0, 1.03}, {2500.0, 1.10}};
  cfg.nominal_mhz = 2500.0;

  // Front end (Zen 2: 4-wide decode, 8-wide op cache of 4K micro-ops).
  cfg.decode_width = 4;
  cfg.opcache_width = 8;
  cfg.opcache_uops = 4096;
  cfg.l1i_bytes = 32 * 1024;
  cfg.l2_fetch_penalty = 0.004;

  // Back end (Sec. IV-A: 2x fma/mul + 2x add pipes, 3 AGU, 4 ALU).
  cfg.fma_pipes = 2;
  cfg.alu_pipes = 4;
  cfg.load_pipes = 2;
  cfg.store_pipes = 1;
  cfg.mlp = 20;

  // Memory levels (latency in core cycles; RAM latency is wall-time and is
  // rescaled by frequency inside the model). Bandwidths per core in
  // bytes/cycle; RAM shared cap per socket in GB/s (8ch DDR4-1600 DIMMs,
  // Table II).
  cfg.mem[1] = MemLevelParams{4.0, 64.0, 0.0, 0.0};
  cfg.mem[2] = MemLevelParams{13.0, 24.0, 0.0, 0.90};
  cfg.mem[3] = MemLevelParams{39.0, 8.0, 0.0, 0.85};
  cfg.mem[4] = MemLevelParams{275.0, 8.0, 80.0, 0.75};  // 110 ns at 2.5 GHz

  PowerParams& p = cfg.power;
  p.platform_static_w = 70.0;
  p.uncore_static_w = 22.0;
  p.dram_static_w = 8.0;
  p.core_idle_w = 0.30;
  p.ref_volts = 1.0;
  p.active_cycle_nj = 0.275;
  p.fma_nj = 0.205;
  p.simd_other_nj = 0.155;
  p.alu_nj = 0.030;
  p.l1_access_nj = 0.34;
  p.l2_access_nj = 2.75;
  p.l3_access_nj = 12.0;
  p.dram_access_nj = 37.0;
  p.fetch_l1i_nj = 0.215;
  p.fetch_l2_nj = 0.43;
  p.trivial_operand_factor = 0.90;

  cfg.throttle.edc_current_budget = 3.70;
  cfg.throttle.step_mhz = 25.0;
  cfg.throttle.floor_mhz = 400.0;

  // ~86 degC package at the ~512 W full-load point, ~39 degC idling.
  cfg.thermal = ThermalParams{25.0, 0.12, 20.0};
  return cfg;
}

MachineConfig MachineConfig::haswell_e5_2680v3_2s(int gpus) {
  MachineConfig cfg;
  cfg.name = "2x Intel Xeon E5-2680 v3 (Haswell-EP, Fig. 2)";
  cfg.sockets = 2;
  cfg.cores_per_socket = 12;
  cfg.smt = 2;
  // Fig. 2 runs at 2000 MHz to avoid AVX-frequency throttling.
  cfg.pstates = {{1200.0, 0.85}, {2000.0, 0.95}, {2500.0, 1.05}};
  cfg.nominal_mhz = 2500.0;

  cfg.decode_width = 4;
  cfg.opcache_width = 6;      // Haswell micro-op queue/LSD
  cfg.opcache_uops = 1536;    // 1.5K micro-op cache
  cfg.l1i_bytes = 32 * 1024;
  cfg.l2_fetch_penalty = 0.03;

  cfg.fma_pipes = 2;
  cfg.alu_pipes = 4;
  cfg.load_pipes = 2;
  cfg.store_pipes = 1;
  cfg.mlp = 10;

  cfg.mem[1] = MemLevelParams{4.0, 64.0, 0.0, 0.0};
  cfg.mem[2] = MemLevelParams{12.0, 32.0, 0.0, 0.90};
  cfg.mem[3] = MemLevelParams{36.0, 7.0, 0.0, 0.80};
  cfg.mem[4] = MemLevelParams{225.0, 6.0, 60.0, 0.70};  // 90 ns at 2.5 GHz, 4ch DDR4

  PowerParams& p = cfg.power;
  // Calibrated against Fig. 2's bars (per-node wall power): idle ~75 W,
  // sqrtsd loop ~115 W, REG-only ~250 W, rising to ~355 W with all levels
  // (the 2018 Taurus CDF tops out at 359.9 W).
  p.platform_static_w = 45.0 + (gpus > 0 ? 110.0 : 0.0);  // GPU node: bigger PSU/fans
  p.uncore_static_w = 9.0;
  p.dram_static_w = 5.0;
  p.core_idle_w = 0.25;
  p.ref_volts = 0.95;
  p.active_cycle_nj = 0.55;
  p.fma_nj = 0.60;
  p.simd_other_nj = 0.40;
  p.alu_nj = 0.06;
  p.l1_access_nj = 0.55;
  p.l2_access_nj = 2.75;
  p.l3_access_nj = 14.0;
  p.dram_access_nj = 42.0;
  p.fetch_l1i_nj = 0.10;
  p.fetch_l2_nj = 2.4;
  p.trivial_operand_factor = 0.88;

  // At the pinned 2000 MHz the parts stay inside TDP: budget effectively
  // only bites near nominal frequency.
  cfg.throttle.edc_current_budget = 8.0;
  cfg.throttle.step_mhz = 100.0;  // Haswell throttles in 100 MHz bins
  cfg.throttle.floor_mhz = 1200.0;

  // ~85 degC at the ~355 W all-levels point; smaller heatsinks than the
  // Rome node, so a steeper rise per watt.
  cfg.thermal = ThermalParams{25.0, 0.17, 15.0};

  cfg.gpu.count = gpus;
  cfg.gpu.idle_w = 29.0;
  cfg.gpu.stress_w = 156.0;
  return cfg;
}

}  // namespace fs2::sim
