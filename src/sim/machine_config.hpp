#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace fs2::sim {

/// One core P-state: frequency and the voltage the on-die regulator applies
/// at that frequency (dynamic power scales with f * V^2).
struct PState {
  double mhz = 0.0;
  double volts = 0.0;
};

/// Per-level memory parameters of the analytic performance model.
struct MemLevelParams {
  double latency_cycles = 0.0;       ///< load-to-use latency at nominal frequency
  double core_bw_bytes_cycle = 0.0;  ///< per-core sustainable bandwidth
  double shared_bw_gbps = 0.0;       ///< socket-wide bandwidth cap (0 = uncapped)
  double prefetch_cover = 0.0;       ///< fraction of latency hidden by HW prefetch
                                     ///< for the sequential streams FIRESTARTER emits
};

/// Energy coefficients of the power model. All per-event energies are in
/// nanojoules; static powers in watts. Calibrated against the wattages the
/// paper reports for the two testbeds (see sim/power_model.cpp for the
/// anchor table).
struct PowerParams {
  // Platform & package static contributions (independent of load).
  double platform_static_w = 0.0;   ///< PSU overhead, fans, board, disk
  double uncore_static_w = 0.0;     ///< per socket: I/O die / ring at idle
  double dram_static_w = 0.0;       ///< per socket: DIMM background
  double core_idle_w = 0.0;         ///< per core in idle/C-state at nominal V

  // Dynamic, per core: base cost of an active cycle and per-event adders,
  // all normalized to the reference voltage below and scaled by f*V^2.
  double ref_volts = 1.0;
  double active_cycle_nj = 0.0;     ///< clocking + front-end base, per cycle
  double fma_nj = 0.0;              ///< one 256-bit FMA, non-trivial operands
  double simd_other_nj = 0.0;       ///< 256-bit mul/add/move
  double alu_nj = 0.0;              ///< integer op
  double l1_access_nj = 0.0;        ///< per 64 B line from L1-D
  double l2_access_nj = 0.0;        ///< per line transferred L2<->L1
  double l3_access_nj = 0.0;        ///< per line transferred L3<->L2
  double dram_access_nj = 0.0;      ///< per line to/from DRAM (DIMM + PHY)
  double fetch_l1i_nj = 0.0;        ///< per 32 B instruction-fetch from L1-I
  double fetch_l2_nj = 0.0;         ///< additional per line fetched from L2

  /// FMA energy multiplier when operands are trivial (0/inf): the unit
  /// clock-gates parts of the datapath (Hickmann patent; Sec. III-D).
  double trivial_operand_factor = 1.0;

  /// Fraction of static (leakage) power added once the package is warm;
  /// traces ramp toward this over `thermal_tau_s` (Fig. 7 preheat).
  double warm_leakage_gain = 0.03;
  double thermal_tau_s = 45.0;
};

/// EDC-style current-limit throttling (paper Sec. IV-E: peaks would "cause
/// electrical design current specifications to be exceeded"). The governor
/// watches a per-core current-peak proxy: average dynamic power over
/// voltage, scaled up by burstiness (stall/resume swings raise di/dt), so
/// memory-stalled workloads throttle deeper than smooth compute loops —
/// exactly the pattern of Fig. 12c.
struct ThrottleParams {
  double edc_current_budget = 1e9;  ///< cap on core_dyn_w / V * burstiness
  double step_mhz = 25.0;           ///< throttle granularity
  double floor_mhz = 400.0;
};

/// First-order package thermal model for closed-loop control experiments:
/// the steady-state temperature is ambient plus c_per_w times wall power,
/// approached with time constant tau_s. Coarse by design — it gives the
/// temperature feedback loop a realistic lag to fight, not a thermal CFD.
struct ThermalParams {
  double ambient_c = 25.0;  ///< inlet air
  double c_per_w = 0.12;    ///< steady-state degC rise per wall watt
  double tau_s = 20.0;      ///< package thermal time constant
};

/// NVIDIA-K80-style GPU power model (Fig. 2: each GPU adds 29 W idle to
/// 156 W under DGEMM stress).
struct GpuParams {
  int count = 0;
  double idle_w = 29.0;
  double stress_w = 156.0;
};

/// Full analytic description of a machine under test. Two built-ins mirror
/// the paper's testbeds; custom configs can be constructed for ablations.
struct MachineConfig {
  std::string name;

  // Topology.
  int sockets = 2;
  int cores_per_socket = 32;
  int smt = 2;

  // Frequency domain.
  std::vector<PState> pstates;
  double nominal_mhz = 0.0;

  // Front end.
  int decode_width = 4;           ///< instructions decoded per cycle
  int opcache_width = 8;          ///< micro-ops per cycle from the op cache
  std::size_t opcache_uops = 4096;  ///< op-cache capacity in micro-ops
  std::size_t l1i_bytes = 32 * 1024;
  double l2_fetch_penalty = 0.02;  ///< extra cycles per instruction when code streams from L2

  // Back end.
  int fma_pipes = 2;
  int alu_pipes = 4;
  int load_pipes = 2;
  int store_pipes = 1;
  int mlp = 16;  ///< outstanding misses the OoO engine overlaps

  // Memory hierarchy, indexed by payload::MemoryLevel (REG entry unused).
  MemLevelParams mem[5];

  PowerParams power;
  ThrottleParams throttle;
  ThermalParams thermal;
  GpuParams gpu;

  int total_cores() const { return sockets * cores_per_socket; }
  int total_threads() const { return total_cores() * smt; }

  /// Voltage at a given frequency: interpolated over the P-state table
  /// (clamped at the ends).
  double volts_at(double mhz) const;

  /// The Table II system: 2x AMD EPYC 7502 (Zen 2), 3 P-states + SMT2.
  static MachineConfig zen2_epyc7502_2s();

  /// The Fig. 2 system: 2x Intel Xeon E5-2680 v3 (Haswell-EP) at 2000 MHz,
  /// optionally with 4x NVIDIA K80.
  static MachineConfig haswell_e5_2680v3_2s(int gpus = 0);

  /// Per-node config lookup by SKU name ("zen2", "haswell", "haswell-gpu")
  /// — how heterogeneous cluster fleets (--loopback specs, agent SKUs) name
  /// their members. Throws fs2::ConfigError on unknown names.
  static MachineConfig named(const std::string& sku);
};

}  // namespace fs2::sim
