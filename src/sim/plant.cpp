#include "sim/plant.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace fs2::sim {

PowerPlant::PowerPlant(const Simulator& simulator, const WorkloadPoint& full_load,
                       std::uint64_t seed, double warm_start_s, bool noise,
                       std::optional<double> initial_temp_c)
    : sim_(simulator),
      full_(full_load),
      idle_w_(simulator.idle().power_w),
      warm_start_s_(warm_start_s),
      noise_(noise),
      rng_(seed) {
  // Carry the previous phase's thermal state when given; otherwise start
  // thermally settled at idle — a fresh run inherits a machine that has
  // been racked and powered, not one at ambient.
  true_temp_c_ = initial_temp_c ? *initial_temp_c : steady_temp_c(idle_w_);
  state_.power_w = idle_w_;
  state_.temp_c = true_temp_c_;
}

double PowerPlant::power_span_w() const { return full_.power_w - idle_w_; }

double PowerPlant::temp_span_c() const {
  return sim_.config().thermal.c_per_w * power_span_w();
}

double PowerPlant::steady_temp_c(double power_w) const {
  const ThermalParams& th = sim_.config().thermal;
  return th.ambient_c + th.c_per_w * power_w;
}

const PowerPlant::State& PowerPlant::step(double level, double dt_s) {
  if (!(dt_s > 0.0)) throw Error("PowerPlant: step dt must be > 0");
  const double clamped = std::clamp(level, 0.0, 1.0);
  state_.time_s += dt_s;
  state_.level = clamped;

  // Same leakage warm-up shape as Simulator::power_trace: full-load power
  // sits below the warm steady state early in a cold run.
  const PowerParams& p = sim_.config().power;
  const double thermal_scale =
      1.0 - p.warm_leakage_gain * std::exp(-(warm_start_s_ + state_.time_s) / p.thermal_tau_s);
  const double clean_power = idle_w_ + clamped * (full_.power_w * thermal_scale - idle_w_);

  // First-order package temperature toward the steady state at this power.
  const ThermalParams& th = sim_.config().thermal;
  const double alpha = std::min(dt_s / th.tau_s, 1.0);
  true_temp_c_ += alpha * (steady_temp_c(clean_power) - true_temp_c_);

  const double power_noise = noise_ ? 1.0 + 0.004 * rng_.normal() : 1.0;
  const double temp_noise = noise_ ? 0.25 * rng_.normal() : 0.0;  // sensor LSB jitter
  state_.power_w = clean_power * power_noise;
  state_.temp_c = true_temp_c_ + temp_noise;
  return state_;
}

}  // namespace fs2::sim
