#pragma once

#include <cstdint>
#include <optional>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace fs2::sim {

/// Virtual-time process model for closed-loop control: maps the commanded
/// load level to the wall power and package temperature the feedback loop
/// measures, with the same leakage warm-up the power_trace model uses plus
/// first-order thermal dynamics from MachineConfig::thermal.
///
/// Power responds to the duty cycle within one step (idle floor plus the
/// load-weighted dynamic power — what a wall meter averages over a PWM
/// period); temperature drags behind with the package time constant. Both
/// carry the LMG95-like 0.4 % measurement noise, deterministic from `seed`,
/// so controller convergence tests are exactly reproducible.
class PowerPlant {
 public:
  struct State {
    double time_s = 0.0;   ///< virtual time since plant construction
    double power_w = 0.0;  ///< measured wall power (noise included)
    double temp_c = 0.0;   ///< measured package temperature (noise included)
    double level = 0.0;    ///< commanded level applied over the last step
  };

  /// `full_load` is the steady-state operating point of the workload at
  /// 100 % duty. `warm_start_s` credits preheat from earlier campaign
  /// phases (leakage ramp) and `initial_temp_c` carries their thermal
  /// state — without it each phase would snap back to the idle-settled
  /// temperature, a physically impossible discontinuity between
  /// back-to-back holds. `noise` can be disabled for analytic tests.
  PowerPlant(const Simulator& simulator, const WorkloadPoint& full_load,
             std::uint64_t seed, double warm_start_s = 0.0, bool noise = true,
             std::optional<double> initial_temp_c = std::nullopt);

  /// Advance virtual time by `dt_s` with the given commanded level and
  /// return the measured state at the end of the step.
  const State& step(double level, double dt_s);

  const State& state() const { return state_; }

  double idle_power_w() const { return idle_w_; }

  /// Wall-power change of a full 0 -> 1 load swing (warm package) — the
  /// plant span the power loop normalizes its error by.
  double power_span_w() const;

  /// Steady-state temperature change of a full load swing — the span for
  /// temperature loops.
  double temp_span_c() const;

  /// Steady-state temperature at a given clean wall power.
  double steady_temp_c(double power_w) const;

  /// Noise-free thermal state — what the next phase's plant should inherit.
  double true_temp_c() const { return true_temp_c_; }

 private:
  const Simulator& sim_;
  WorkloadPoint full_;
  double idle_w_;
  double warm_start_s_;
  bool noise_;
  Xoshiro256 rng_;
  State state_;
  double true_temp_c_;  ///< noise-free thermal state
};

}  // namespace fs2::sim
