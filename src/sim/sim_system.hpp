#pragma once

#include <mutex>

#include "sim/simulator.hpp"

namespace fs2::sim {

/// Thread-safe "system under test" handle for simulator-backed runs: the
/// orchestrator publishes the current operating point whenever the workload
/// or frequency changes, and metric providers (the simulated power meter,
/// the simulated IPC counter) read it concurrently — exactly the role the
/// LMG95 + MetricQ pipeline plays for the real testbed (Fig. 10).
class SimulatedSystem {
 public:
  explicit SimulatedSystem(MachineConfig config) : simulator_(std::move(config)) {}

  const Simulator& simulator() const { return simulator_; }

  /// Publish a new operating point (workload switch, frequency change).
  void set_point(const WorkloadPoint& point) {
    std::lock_guard<std::mutex> lock(mutex_);
    point_ = point;
    loaded_ = true;
  }

  /// Switch to idle (between runs).
  void set_idle() { set_point(simulator_.idle()); }

  WorkloadPoint point() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return loaded_ ? point_ : simulator_.idle();
  }

 private:
  Simulator simulator_;
  mutable std::mutex mutex_;
  WorkloadPoint point_;
  bool loaded_ = false;
};

}  // namespace fs2::sim
