#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace fs2::sim {

using payload::MemoryLevel;
using payload::PayloadStats;

const char* to_string(FetchSource source) {
  switch (source) {
    case FetchSource::kOpCache: return "op-cache";
    case FetchSource::kL1I: return "L1-I";
    case FetchSource::kL2: return "L2";
  }
  return "?";
}

namespace {

constexpr double kNjToJ = 1e-9;

/// Threads per core actually running, given a flat thread count spread
/// one-per-core first (the FIRESTARTER pinning policy).
int smt_factor(const MachineConfig& cfg, int threads) {
  return threads > cfg.total_cores() ? 2 : 1;
}

FetchSource classify_fetch(const MachineConfig& cfg, const PayloadStats& stats) {
  // Both SMT threads execute the same loop body, so op-cache and L1-I
  // entries are shared rather than competitively split.
  if (stats.instructions_per_iteration <= cfg.opcache_uops) return FetchSource::kOpCache;
  if (stats.loop_bytes <= cfg.l1i_bytes) return FetchSource::kL1I;
  return FetchSource::kL2;
}

}  // namespace

WorkloadPoint Simulator::evaluate_at(const PayloadStats& stats, const RunConditions& cond,
                                     double freq_mhz, double volts) const {
  const int threads = cond.threads > 0 ? std::min(cond.threads, cfg_.total_threads())
                                       : cfg_.total_threads();
  const int smt = smt_factor(cfg_, threads);
  const int active_cores = std::min(threads, cfg_.total_cores());
  const double f_hz = freq_mhz * 1e6;
  const double vscale = (volts / cfg_.power.ref_volts) * (volts / cfg_.power.ref_volts);

  WorkloadPoint point;
  point.achieved_mhz = freq_mhz;
  point.fetch_source = classify_fetch(cfg_, stats);

  // ---- performance: cycles per core-iteration (one loop iteration on each
  // of the core's `smt` hardware threads) ------------------------------------
  const double instr = static_cast<double>(stats.instructions_per_iteration) * smt;

  double fe_width = cfg_.decode_width;
  if (point.fetch_source == FetchSource::kOpCache) fe_width = cfg_.opcache_width;
  double fe_cycles = instr / fe_width;
  if (point.fetch_source == FetchSource::kL2) fe_cycles += instr * cfg_.l2_fetch_penalty;

  const double fp = static_cast<double>(stats.fp_compute_per_iteration) * smt;
  const double alu =
      static_cast<double>(stats.alu_per_iteration + stats.overhead_per_iteration) * smt;
  const auto& seq = stats.sequence;
  double loads = 0, stores = 0, prefetches = 0;
  for (int level = 1; level < payload::kNumMemoryLevels; ++level) {
    loads += seq.loads[level];
    stores += seq.stores[level];
    prefetches += seq.prefetches[level];
  }
  const double exec_cycles =
      std::max({fp / cfg_.fma_pipes, alu / cfg_.alu_pipes,
                (loads + prefetches) * smt / cfg_.load_pipes, stores * smt / cfg_.store_pipes});

  // Memory: bandwidth constraints overlap with compute (take the max);
  // residual latency that MLP and prefetch cannot hide adds on top.
  double bw_cycles = 0.0;
  double latency_cycles = 0.0;
  for (int level = 2; level < payload::kNumMemoryLevels; ++level) {
    const double lines = static_cast<double>(seq.lines(static_cast<MemoryLevel>(level))) * smt;
    if (lines == 0.0) continue;
    const MemLevelParams& mem = cfg_.mem[level];
    double lat = mem.latency_cycles;
    if (level == static_cast<int>(MemoryLevel::kRam))
      lat *= freq_mhz / cfg_.nominal_mhz;  // DRAM latency is wall-time, not core cycles
    latency_cycles += lines * lat * (1.0 - mem.prefetch_cover) / cfg_.mlp;
    // Stores beyond L1 cost double traffic: the write-allocate fill plus
    // the eventual dirty writeback.
    const double traffic_lines =
        lines + static_cast<double>(seq.stores[level]) * smt;
    bw_cycles = std::max(bw_cycles, traffic_lines * 64.0 / mem.core_bw_bytes_cycle);
    if (mem.shared_bw_gbps > 0.0) {
      const double cores_per_socket =
          static_cast<double>(active_cores) / cfg_.sockets;
      const double bytes_socket = traffic_lines * 64.0 * cores_per_socket;
      bw_cycles = std::max(bw_cycles, bytes_socket / (mem.shared_bw_gbps * 1e9) * f_hz);
    }
  }

  const double cycles = std::max({fe_cycles, exec_cycles, bw_cycles}) + latency_cycles;
  point.cycles_per_iteration = cycles;
  point.ipc_per_core = instr / cycles;

  double dcache_lines = 0.0;
  for (int level = 1; level < payload::kNumMemoryLevels; ++level) {
    dcache_lines += (seq.loads[level] + seq.stores[level]) * smt;
    point.lines_per_cycle[static_cast<std::size_t>(level)] =
        static_cast<double>(seq.lines(static_cast<MemoryLevel>(level))) * smt / cycles;
  }
  point.dcache_rate = dcache_lines / cycles;
  point.gflops = static_cast<double>(stats.flops_per_iteration) * smt * active_cores / cycles *
                 f_hz / 1e9;

  // ---- power ------------------------------------------------------------------
  const PowerParams& p = cfg_.power;
  const double trivial =
      cond.policy == payload::DataInitPolicy::kV174InfinityBug ? p.trivial_operand_factor : 1.0;

  const double r_fma = static_cast<double>(stats.fma_per_iteration) * smt / cycles;
  const double r_other =
      static_cast<double>(stats.simd_per_iteration - stats.fma_per_iteration) * smt / cycles;
  const double r_alu = alu / cycles;
  const double r_l1 = point.lines_per_cycle[static_cast<int>(MemoryLevel::kL1)];
  const double r_l2 = point.lines_per_cycle[static_cast<int>(MemoryLevel::kL2)];

  double fetch_nj = 0.0;
  if (point.fetch_source != FetchSource::kOpCache) {
    const double fetch_chunks = static_cast<double>(stats.loop_bytes) / 32.0 * smt / cycles;
    fetch_nj += p.fetch_l1i_nj * fetch_chunks;
  }
  if (point.fetch_source == FetchSource::kL2) {
    const double fetch_lines = static_cast<double>(stats.loop_bytes) / 64.0 * smt / cycles;
    fetch_nj += p.fetch_l2_nj * fetch_lines;
  }

  // Per-op SIMD energy scales with datapath width (the coefficients are
  // calibrated for the 256-bit mixes).
  const double width_scale = static_cast<double>(stats.vector_doubles) / 4.0;
  const double core_cycle_nj = p.active_cycle_nj + p.fma_nj * width_scale * r_fma * trivial +
                               p.simd_other_nj * width_scale * r_other + p.alu_nj * r_alu +
                               p.l1_access_nj * r_l1 + p.l2_access_nj * r_l2 + fetch_nj;
  const double core_dyn_w = core_cycle_nj * kNjToJ * f_hz * vscale;
  point.core_power_w = p.core_idle_w + core_dyn_w;
  // Current-peak proxy for the EDC governor: stall/resume swings raise
  // di/dt, so the mean current is scaled by burstiness.
  point.burstiness = cycles / std::max(fe_cycles, exec_cycles);
  point.edc_proxy = core_dyn_w / volts * point.burstiness;

  // Off-core traffic is charged per line at fixed energy (I/O-die clock
  // domain: no core-voltage scaling).
  const double r_l3 = point.lines_per_cycle[static_cast<int>(MemoryLevel::kL3)];
  const double r_ram = point.lines_per_cycle[static_cast<int>(MemoryLevel::kRam)];
  const double uncore_dyn_w =
      (p.l3_access_nj * r_l3 + p.dram_access_nj * r_ram) * kNjToJ * f_hz * active_cores;

  const int idle_cores = cfg_.total_cores() - active_cores;
  double power = p.platform_static_w + cfg_.sockets * (p.uncore_static_w + p.dram_static_w) +
                 active_cores * point.core_power_w + idle_cores * p.core_idle_w + uncore_dyn_w;
  power += cfg_.gpu.count * (cond.gpu_stress ? cfg_.gpu.stress_w : cfg_.gpu.idle_w);
  point.power_w = power;
  return point;
}

WorkloadPoint Simulator::run(const PayloadStats& stats, const RunConditions& cond) const {
  double freq = cond.freq_mhz > 0.0 ? cond.freq_mhz : cfg_.nominal_mhz;
  // Voltage follows the DVFS curve as the governor steps the clock down —
  // consistent with Fig. 12a/c, where power tracks the *achieved*
  // frequency (512.2 W @ 2164 MHz vs 514.4 W @ 2304 MHz) rather than the
  // requested P-state's voltage.
  WorkloadPoint point = evaluate_at(stats, cond, freq, cfg_.volts_at(freq));
  // EDC-style governor: step the clock down until the current-peak proxy
  // fits the budget (Sec. IV-E: "the processor decreases its frequency
  // dynamically to avoid peaks").
  while (point.edc_proxy > cfg_.throttle.edc_current_budget &&
         freq - cfg_.throttle.step_mhz >= cfg_.throttle.floor_mhz) {
    freq -= cfg_.throttle.step_mhz;
    point = evaluate_at(stats, cond, freq, cfg_.volts_at(freq));
    point.throttled = true;
  }
  return point;
}

WorkloadPoint Simulator::idle() const {
  const PowerParams& p = cfg_.power;
  WorkloadPoint point;
  point.achieved_mhz = cfg_.pstates.front().mhz;
  // Deep C-states: cores nearly gated, uncore clocked down.
  point.power_w = p.platform_static_w * 0.9 +
                  cfg_.sockets * (p.uncore_static_w * 0.8 + p.dram_static_w) +
                  cfg_.total_cores() * 0.05;
  point.power_w += cfg_.gpu.count * cfg_.gpu.idle_w;
  return point;
}

WorkloadPoint Simulator::low_power_loop(double freq_mhz) const {
  const PowerParams& p = cfg_.power;
  const double freq = freq_mhz > 0.0 ? freq_mhz : cfg_.nominal_mhz;
  const double volts = cfg_.volts_at(freq);
  const double vscale = (volts / p.ref_volts) * (volts / p.ref_volts);
  WorkloadPoint point;
  point.achieved_mhz = freq;
  // Serialized sqrtsd: the front-end and scheduler stay awake but execution
  // units are idle most cycles; IPC is latency-bound at ~1/20.
  point.ipc_per_core = 0.05;
  const double core_dyn_w = p.active_cycle_nj * 1.0 * kNjToJ * freq * 1e6 * vscale;
  point.core_power_w = p.core_idle_w + core_dyn_w;
  point.power_w = p.platform_static_w + cfg_.sockets * (p.uncore_static_w + p.dram_static_w) +
                  cfg_.total_cores() * point.core_power_w;
  point.power_w += cfg_.gpu.count * cfg_.gpu.idle_w;
  return point;
}

std::vector<double> Simulator::power_trace(const WorkloadPoint& point, double duration_s,
                                           double sample_hz, std::uint64_t seed,
                                           double warm_start_s) const {
  if (duration_s <= 0.0 || sample_hz <= 0.0)
    throw Error("Simulator::power_trace: duration and sample rate must be positive");
  PowerTraceStream stream(*this, point, sample_hz, seed, warm_start_s);
  const auto samples = static_cast<std::size_t>(duration_s * sample_hz);
  std::vector<double> trace;
  trace.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) trace.push_back(stream.next());
  return trace;
}

PowerTraceStream::PowerTraceStream(const Simulator& simulator, const WorkloadPoint& point,
                                   double sample_hz, std::uint64_t seed, double warm_start_s)
    : params_(simulator.config().power),
      power_w_(point.power_w),
      sample_hz_(sample_hz),
      warm_start_s_(warm_start_s),
      rng_(seed) {
  if (sample_hz_ <= 0.0) throw Error("PowerTraceStream: sample rate must be positive");
}

double PowerTraceStream::next() {
  const double t = warm_start_s_ + time_at(index_++);
  // Leakage rises as the silicon warms: a cold start sits below the
  // steady state by warm_leakage_gain and converges with thermal_tau_s.
  const double thermal = 1.0 - params_.warm_leakage_gain * std::exp(-t / params_.thermal_tau_s);
  const double noise = 1.0 + 0.004 * rng_.normal();
  return power_w_ * thermal * noise;
}

}  // namespace fs2::sim
