#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "payload/compiler.hpp"
#include "payload/data.hpp"
#include "sim/machine_config.hpp"
#include "util/rng.hpp"

namespace fs2::sim {

/// Instruction-fetch source of the inner loop (Fig. 8's three categories).
enum class FetchSource { kOpCache, kL1I, kL2 };

const char* to_string(FetchSource source);

/// Conditions of one simulated run.
struct RunConditions {
  double freq_mhz = 0.0;                 ///< requested P-state (0 = nominal)
  int threads = 0;                       ///< active worker threads (0 = all)
  payload::DataInitPolicy policy = payload::DataInitPolicy::kSafe;
  bool gpu_stress = false;               ///< also stress attached GPUs (Fig. 2)
};

/// Steady-state result of running a workload on the simulated machine —
/// the quantities the paper's figures plot.
struct WorkloadPoint {
  double power_w = 0.0;            ///< system wall power
  double ipc_per_core = 0.0;       ///< instructions per cycle per core (Figs. 8/9/11/12b)
  double achieved_mhz = 0.0;       ///< after EDC throttling (Fig. 12c)
  double dcache_rate = 0.0;        ///< data-cache accesses per cycle per core (Fig. 9)
  double gflops = 0.0;             ///< aggregate FLOP rate
  double cycles_per_iteration = 0.0;
  bool throttled = false;
  FetchSource fetch_source = FetchSource::kOpCache;
  double core_power_w = 0.0;       ///< per-core power
  double edc_proxy = 0.0;          ///< current-peak proxy the governor watches
  double burstiness = 1.0;         ///< total cycles / compute cycles (>= 1)
  std::array<double, 5> lines_per_cycle{};  ///< per-level line transfers/cycle/core
};

/// Analytic microarchitecture performance & power simulator. This is the
/// substitute for the paper's physical testbeds: it models the front-end
/// fetch path (op cache / L1-I / L2), execution-port pressure, per-level
/// memory bandwidth and latency with prefetch and MLP overlap, an EDC-style
/// frequency governor, a data-dependent FMA power model, and the attached
/// GPUs. Fully deterministic; all experiments run in virtual time.
class Simulator {
 public:
  explicit Simulator(MachineConfig config) : cfg_(std::move(config)) {}

  const MachineConfig& config() const { return cfg_; }

  /// Steady-state evaluation of a compiled/analyzed payload.
  WorkloadPoint run(const payload::PayloadStats& stats, const RunConditions& cond) const;

  /// System power with all cores in deep C-states (Fig. 2 "Idle").
  WorkloadPoint idle() const;

  /// Low-power active loop (Fig. 2 "Low power loop (sqrtsd)"): serialized
  /// scalar sqrt keeps cores awake but pipelines nearly empty.
  WorkloadPoint low_power_loop(double freq_mhz = 0.0) const;

  /// Power trace for a steady workload: thermal leakage ramp toward the
  /// warm state plus measurement noise, sampled at `sample_hz` (the ZES
  /// LMG95 in the paper samples at 20 Sa/s). `warm_start_s` sets how much
  /// preheat the package already had (Fig. 7: candidates after preheat show
  /// no ramp). Materializes the whole trace; long-running callers should
  /// stream through PowerTraceStream instead.
  std::vector<double> power_trace(const WorkloadPoint& point, double duration_s,
                                  double sample_hz, std::uint64_t seed,
                                  double warm_start_s = 0.0) const;

 private:
  /// Performance at a fixed frequency and core voltage (no throttling).
  WorkloadPoint evaluate_at(const payload::PayloadStats& stats, const RunConditions& cond,
                            double freq_mhz, double volts) const;

  MachineConfig cfg_;
};

/// Streaming generator behind Simulator::power_trace: the same leakage
/// warm-up and meter-noise model, one sample per next() call, O(1) state.
/// Virtual-time runs of any length publish these samples straight onto the
/// telemetry bus instead of materializing an O(duration) vector first —
/// the simulator-side half of the bounded-memory telemetry path.
class PowerTraceStream {
 public:
  PowerTraceStream(const Simulator& simulator, const WorkloadPoint& point, double sample_hz,
                   std::uint64_t seed, double warm_start_s = 0.0);

  double sample_hz() const { return sample_hz_; }
  /// Phase-local timestamp of sample `index`.
  double time_at(std::size_t index) const { return static_cast<double>(index) / sample_hz_; }
  /// Samples generated so far (the index the next next() will produce).
  std::size_t produced() const { return index_; }

  /// The next power sample (W). Deterministic for a given seed: the n-th
  /// call returns the n-th element of the equivalent power_trace() vector.
  double next();

 private:
  const PowerParams& params_;
  double power_w_;
  double sample_hz_;
  double warm_start_s_;
  Xoshiro256 rng_;
  std::size_t index_ = 0;
};

}  // namespace fs2::sim
