#include "telemetry/bus.hpp"

#include <cmath>

#include "util/error.hpp"

namespace fs2::telemetry {

namespace {

/// Channel-index key. Unit separator is a control byte no channel name or
/// unit uses, so ("a", "b c") and ("a b", "c") cannot collide.
std::string channel_key(const std::string& name, const std::string& unit) {
  std::string key;
  key.reserve(name.size() + unit.size() + 1);
  key += name;
  key += '\x1f';
  key += unit;
  return key;
}

}  // namespace

ChannelId TelemetryBus::channel(const ChannelInfo& info) {
  const auto it = index_.find(channel_key(info.name, info.unit));
  if (it != index_.end()) return it->second;
  channels_.push_back(info);
  const ChannelId id = channels_.size() - 1;
  index_.emplace(channel_key(info.name, info.unit), id);
  for (SampleSink* sink : sinks_) sink->on_channel(id, channels_[id]);
  return id;
}

ChannelId TelemetryBus::channel(const std::string& name, const std::string& unit,
                                TrimMode trim, bool summarize) {
  return channel(ChannelInfo{name, unit, trim, summarize});
}

void TelemetryBus::attach(SampleSink* sink) {
  if (sink == nullptr) throw Error("TelemetryBus::attach: sink must not be null");
  sinks_.push_back(sink);
  for (ChannelId id = 0; id < channels_.size(); ++id) sink->on_channel(id, channels_[id]);
  if (in_phase_) sink->on_phase_begin(phase_);
}

void TelemetryBus::begin_phase(const std::string& name, double duration_s,
                               double start_delta_s, double stop_delta_s) {
  if (in_phase_) end_phase();
  phase_.name = name;
  phase_.duration_s = duration_s;
  phase_.time_offset_s = next_offset_s_;
  phase_.start_delta_s = start_delta_s;
  phase_.stop_delta_s = stop_delta_s;
  in_phase_ = true;
  for (SampleSink* sink : sinks_) sink->on_phase_begin(phase_);
}

void TelemetryBus::end_phase(double actual_elapsed_s) {
  if (!in_phase_) return;
  in_phase_ = false;
  for (SampleSink* sink : sinks_) sink->on_phase_end(phase_);
  const double nominal = std::isfinite(phase_.duration_s) ? phase_.duration_s : 0.0;
  next_offset_s_ = phase_.time_offset_s + std::max(nominal, actual_elapsed_s);
}

void TelemetryBus::publish(ChannelId id, double time_s, double value) {
  if (id >= channels_.size()) throw Error("TelemetryBus::publish: unknown channel id");
  if (!in_phase_)
    throw Error("TelemetryBus::publish: no open phase (call begin_phase first)");
  const Sample sample{time_s, value};
  for (SampleSink* sink : sinks_) sink->on_sample(id, sample);
}

void TelemetryBus::publish_batch(ChannelId id, std::span<const Sample> samples) {
  if (id >= channels_.size()) throw Error("TelemetryBus::publish_batch: unknown channel id");
  if (!in_phase_)
    throw Error("TelemetryBus::publish_batch: no open phase (call begin_phase first)");
  if (samples.empty()) return;
  for (SampleSink* sink : sinks_) sink->on_samples(id, samples.data(), samples.size());
}

void TelemetryBus::finish() {
  if (in_phase_) end_phase();
  for (SampleSink* sink : sinks_) sink->on_finish();
}

}  // namespace fs2::telemetry
