#pragma once

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "telemetry/sample_sink.hpp"

namespace fs2::telemetry {

/// Fan-out hub between sample producers (metric pollers, the feedback
/// loop, the simulator's trace generators) and bounded consumers (summary
/// aggregation, per-tick CSV streaming, trace recording, debug tails).
///
/// One bus per run. Producers register channels up front — registration
/// order is the summary CSV's row order — then publish (time, value) pairs
/// with phase-local timestamps. The orchestrator brackets aggregation
/// windows with begin_phase()/end_phase(); finish() closes the last phase
/// and flushes every sink. Single-threaded by design: all publishing
/// happens on the orchestrator's sampling loop, exactly where the old
/// TimeSeries vectors were filled.
class TelemetryBus {
 public:
  /// Get-or-create the channel keyed by (name, unit). On create, `info`'s
  /// policy fields are honored and every attached sink is notified; on
  /// lookup the existing id (and its original policy) is returned, which is
  /// what lets campaign phases re-register their channels idempotently.
  ChannelId channel(const ChannelInfo& info);
  ChannelId channel(const std::string& name, const std::string& unit,
                    TrimMode trim = TrimMode::kPhase, bool summarize = true);

  /// Attach a sink (not owned; must outlive the bus). Already-registered
  /// channels and an already-open phase are replayed so attach order and
  /// registration order don't have to be coordinated.
  void attach(SampleSink* sink);

  /// Open an aggregation window. Implicitly ends a still-open phase first
  /// (advancing campaign time by its nominal duration).
  void begin_phase(const std::string& name, double duration_s, double start_delta_s,
                   double stop_delta_s);

  /// Close the current phase. `actual_elapsed_s` advances campaign time
  /// when the wall clock overran the nominal duration (host sampling loops
  /// quantize at 50 ms); pass a negative value (default) to advance by the
  /// nominal duration.
  void end_phase(double actual_elapsed_s = -1.0);

  void publish(ChannelId id, double time_s, double value);

  /// Batched publish: one validation and one virtual dispatch per sink for
  /// the whole span instead of per sample. Timestamps must be non-decreasing
  /// within the span (same contract as repeated publish calls). Produces
  /// byte-identical aggregation to publishing each sample individually —
  /// batching is a transport optimization, never a semantic one.
  void publish_batch(ChannelId id, std::span<const Sample> samples);

  /// End the open phase (if any) and notify sinks the run is over.
  void finish();

  const ChannelInfo& info(ChannelId id) const { return channels_[id]; }
  std::size_t channel_count() const { return channels_.size(); }
  bool in_phase() const { return in_phase_; }
  const PhaseInfo& phase() const { return phase_; }

 private:
  std::vector<ChannelInfo> channels_;
  /// (name, unit) -> id. The vector stays the source of truth for
  /// registration order (summary row order); the map only accelerates the
  /// get-or-create lookup, which producers hit on every phase of a campaign.
  std::unordered_map<std::string, ChannelId> index_;
  std::vector<SampleSink*> sinks_;
  PhaseInfo phase_;
  bool in_phase_ = false;
  double next_offset_s_ = 0.0;
};

}  // namespace fs2::telemetry
