#pragma once

#include <cstddef>
#include <iterator>
#include <vector>

namespace fs2::telemetry {

/// Fixed-capacity overwrite-oldest ring. The telemetry layer's answer to
/// "keep the recent past without keeping the whole run": trace/debug tails,
/// the feedback loop's trailing-window statistics, and TimeSeries' sample
/// tail all sit on one of these, so their memory is O(capacity) no matter
/// how long the run lasts.
///
/// Index 0 is always the OLDEST retained element; size() grows until it
/// reaches capacity() and stays there, with each further push evicting the
/// oldest element. Iteration walks oldest -> newest.
template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : capacity_(capacity ? capacity : 1) {
    slots_.reserve(capacity_);
  }

  void push(T value) {
    if (slots_.size() < capacity_) {
      slots_.push_back(std::move(value));
      return;
    }
    slots_[head_] = std::move(value);
    head_ = (head_ + 1) % capacity_;
    evicted_ = true;
  }

  void clear() {
    slots_.clear();
    head_ = 0;
    evicted_ = false;
  }

  std::size_t size() const { return slots_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return slots_.empty(); }
  /// True once pushes have started evicting (total pushed > capacity).
  bool wrapped() const { return evicted_; }

  /// index 0 = oldest retained, size()-1 = newest.
  const T& operator[](std::size_t index) const {
    return slots_[(head_ + index) % slots_.size()];
  }
  const T& front() const { return (*this)[0]; }
  const T& back() const { return (*this)[slots_.size() - 1]; }

  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using pointer = const T*;
    using reference = const T&;

    const_iterator(const RingBuffer* ring, std::size_t index) : ring_(ring), index_(index) {}
    const T& operator*() const { return (*ring_)[index_]; }
    const T* operator->() const { return &(*ring_)[index_]; }
    const_iterator& operator++() { ++index_; return *this; }
    const_iterator operator++(int) { const_iterator copy = *this; ++index_; return copy; }
    bool operator==(const const_iterator& other) const { return index_ == other.index_; }
    bool operator!=(const const_iterator& other) const { return index_ != other.index_; }

   private:
    const RingBuffer* ring_;
    std::size_t index_;
  };

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, slots_.size()); }

  /// Copy out oldest -> newest (debug dumps, tests).
  std::vector<T> snapshot() const { return std::vector<T>(begin(), end()); }

 private:
  std::size_t capacity_;
  std::vector<T> slots_;   ///< grows to capacity_, then fixed
  std::size_t head_ = 0;   ///< index of the oldest element once full
  bool evicted_ = false;   ///< a push has overwritten data
};

}  // namespace fs2::telemetry
