#pragma once

namespace fs2::telemetry {

/// One timestamped reading of some quantity. The telemetry layer is the
/// bottom of the measurement stack: producers (metric pollers, the feedback
/// loop, the simulator) stamp values with seconds since their window began
/// and push them through a TelemetryBus; nothing below this struct retains
/// unbounded history.
struct Sample {
  double time_s = 0.0;  ///< seconds since the window (phase) began
  double value = 0.0;
};

}  // namespace fs2::telemetry
