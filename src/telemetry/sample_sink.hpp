#pragma once

#include <cstddef>
#include <limits>
#include <string>

#include "telemetry/sample.hpp"

namespace fs2::telemetry {

using ChannelId = std::size_t;

/// How a channel's samples are trimmed before summary aggregation.
enum class TrimMode {
  kPhase,  ///< the active phase's start/stop deltas (the paper's semantics)
  kNone,   ///< no trimming — every sample counts (e.g. load-level traces)
};

/// Identity and policy of one sample stream on the bus.
struct ChannelInfo {
  std::string name;
  std::string unit;
  TrimMode trim = TrimMode::kPhase;
  /// False drops the channel from summary output while other sinks (trace
  /// recording, per-tick logs) still see its samples.
  bool summarize = true;
};

/// One aggregation window. Outside campaigns there is a single anonymous
/// phase covering the whole run; campaigns begin one phase per line of the
/// campaign file. Sample timestamps on the bus are PHASE-LOCAL;
/// `time_offset_s` converts to run/campaign time for sinks that write
/// global timestamps (trace recorder, control log).
struct PhaseInfo {
  std::string name;  ///< empty outside campaigns
  double duration_s = std::numeric_limits<double>::infinity();
  double time_offset_s = 0.0;
  /// Effective trim deltas for TrimMode::kPhase channels. The caller owns
  /// clamp policy (e.g. campaigns clamp to a quarter of the phase so the
  /// 5 s/2 s defaults cannot eat a short phase).
  double start_delta_s = 0.0;
  double stop_delta_s = 0.0;
};

/// Receiver of bus traffic. All hooks run on the publishing thread (the
/// orchestrator's sampling loop); implementations must be cheap and must
/// not retain unbounded history — bounded state is the whole point of the
/// telemetry layer.
class SampleSink {
 public:
  virtual ~SampleSink() = default;

  /// A channel was registered (also replayed for pre-existing channels when
  /// the sink attaches late).
  virtual void on_channel(ChannelId id, const ChannelInfo& info) {
    (void)id;
    (void)info;
  }

  virtual void on_phase_begin(const PhaseInfo& phase) { (void)phase; }

  /// One sample on `id`; `sample.time_s` is phase-local.
  virtual void on_sample(ChannelId id, const Sample& sample) = 0;

  /// A contiguous run of samples on `id`, timestamps non-decreasing — the
  /// bus's batched fast path (TelemetryBus::publish_batch). The default
  /// falls back to per-sample delivery so existing sinks keep working;
  /// throughput-critical sinks (summary aggregation, the cluster merge)
  /// override it to hoist their per-sample channel resolution out of the
  /// loop.
  virtual void on_samples(ChannelId id, const Sample* samples, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) on_sample(id, samples[i]);
  }

  /// The phase finished. `phase` carries the same info on_phase_begin saw.
  virtual void on_phase_end(const PhaseInfo& phase) { (void)phase; }

  /// The run finished (after the final on_phase_end).
  virtual void on_finish() {}
};

}  // namespace fs2::telemetry
