#include "telemetry/sinks.hpp"

#include "util/logging.hpp"

namespace fs2::telemetry {

// ---- SummarySink ------------------------------------------------------------

void SummarySink::on_channel(ChannelId id, const ChannelInfo& info) {
  if (channels_.size() <= id) channels_.resize(id + 1);
  channels_[id] = info;
}

void SummarySink::on_phase_begin(const PhaseInfo& phase) {
  phase_ = phase;
  active_.clear();
  arrival_order_.clear();
}

StreamingAggregator& SummarySink::aggregator(ChannelId id) {
  if (active_.size() <= id) active_.resize(id + 1);
  if (!active_[id]) {
    const bool trimmed = channels_[id].trim == TrimMode::kPhase;
    active_[id].emplace(trimmed ? phase_.start_delta_s : 0.0,
                        trimmed ? phase_.stop_delta_s : 0.0);
    arrival_order_.push_back(id);
  }
  return *active_[id];
}

void SummarySink::on_sample(ChannelId id, const Sample& sample) {
  // Channels excluded from the summary (trace/log-only streams) produce no
  // row — aggregating them would be pure waste.
  if (!channels_[id].summarize) return;
  aggregator(id).add(sample.time_s, sample.value);
}

void SummarySink::on_samples(ChannelId id, const Sample* samples, std::size_t count) {
  if (count == 0 || !channels_[id].summarize) return;
  aggregator(id).add_batch(samples, count);
}

void SummarySink::on_phase_end(const PhaseInfo& phase) {
  for (const ChannelId id : arrival_order_) {
    const StreamingAggregator& aggregator = *active_[id];
    const ChannelInfo& info = channels_[id];
    if (!info.summarize || aggregator.total_samples() == 0) continue;
    const StreamingSummary stats = aggregator.summarize();
    if (stats.trim_fallback)
      log::warn() << "metric '" << info.name << "': start/stop deltas ("
                  << aggregator.start_delta_s() << " s / " << aggregator.stop_delta_s()
                  << " s) trimmed away every sample; reporting the untrimmed aggregate";
    metrics::Summary row;
    row.name = info.name;
    row.unit = info.unit;
    row.mean = stats.mean;
    row.stddev = stats.stddev;
    row.min = stats.min;
    row.max = stats.max;
    row.p50 = stats.p50;
    row.p95 = stats.p95;
    row.p99 = stats.p99;
    row.samples = stats.samples;
    row.phase = phase.name;
    rows_.push_back(std::move(row));
  }
  active_.clear();
  arrival_order_.clear();
}

void SummarySink::on_finish() {
  active_.clear();
  arrival_order_.clear();
}

// ---- RingBufferSink ---------------------------------------------------------

void RingBufferSink::on_channel(ChannelId id, const ChannelInfo& info) {
  (void)info;
  while (tails_.size() <= id)
    tails_.push_back(std::make_unique<RingBuffer<Sample>>(capacity_));
}

void RingBufferSink::on_sample(ChannelId id, const Sample& sample) {
  tails_[id]->push(Sample{phase_.time_offset_s + sample.time_s, sample.value});
}

}  // namespace fs2::telemetry
