#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "metrics/measurement.hpp"
#include "telemetry/bus.hpp"
#include "telemetry/ring_buffer.hpp"
#include "telemetry/streaming_aggregator.hpp"

namespace fs2::telemetry {

/// Bus sink producing the measurement-CSV summary rows: one
/// StreamingAggregator per (channel, phase), cut at phase boundaries, with
/// the channel's trim policy applied. Replaces the old pattern of keeping a
/// TimeSeries per metric for the whole run and batch-summarizing at the
/// end — memory is O(channels), not O(samples).
///
/// Row order: phases in chronological order, and within a phase the
/// channels in the order their first sample of that phase arrived (which is
/// how the per-phase series vectors this replaces were built — a campaign
/// mixing power- and temperature-regulated phases keeps each phase's ctl
/// block contiguous). Channels that received no samples in a phase produce
/// no row (a campaign's ctl-* channels are silent during open-loop phases);
/// channels whose trim window removed every sample fall back to the
/// untrimmed aggregate with a logged warning instead of aborting the run.
class SummarySink : public SampleSink {
 public:
  void on_channel(ChannelId id, const ChannelInfo& info) override;
  void on_phase_begin(const PhaseInfo& phase) override;
  void on_sample(ChannelId id, const Sample& sample) override;
  void on_samples(ChannelId id, const Sample* samples, std::size_t count) override;
  void on_phase_end(const PhaseInfo& phase) override;
  void on_finish() override;

  /// Finished per-phase rows (phases end at on_phase_end; call after
  /// TelemetryBus::finish() for the complete set).
  const std::vector<metrics::Summary>& rows() const { return rows_; }

 private:
  /// Get-or-create the current phase's aggregator for `id` — the once-per-
  /// batch half of the ingest path; the per-sample half is add()/add_batch().
  StreamingAggregator& aggregator(ChannelId id);

  std::vector<ChannelInfo> channels_;
  /// Current phase's aggregators, indexed by ChannelId (engaged = received
  /// samples this phase). Flat so the per-batch resolution is one bounds
  /// check and one load, not a tree walk.
  std::vector<std::optional<StreamingAggregator>> active_;
  std::vector<ChannelId> arrival_order_;  ///< first-sample order within the phase
  PhaseInfo phase_;
  std::vector<metrics::Summary> rows_;
};

/// Bounded tail of recent samples per channel (global run timestamps) —
/// the trace/debug window: cheap enough to leave attached on week-long
/// runs, deep enough to answer "what did the last minutes look like" in a
/// debugger or post-mortem dump.
class RingBufferSink : public SampleSink {
 public:
  explicit RingBufferSink(std::size_t capacity_per_channel)
      : capacity_(capacity_per_channel) {}

  void on_channel(ChannelId id, const ChannelInfo& info) override;
  void on_phase_begin(const PhaseInfo& phase) override { phase_ = phase; }
  void on_sample(ChannelId id, const Sample& sample) override;

  const RingBuffer<Sample>& tail(ChannelId id) const { return *tails_.at(id); }

 private:
  std::size_t capacity_;
  PhaseInfo phase_;
  std::vector<std::unique_ptr<RingBuffer<Sample>>> tails_;  ///< index = ChannelId
};

}  // namespace fs2::telemetry
