#include "telemetry/streaming_aggregator.hpp"

#include <algorithm>
#include <cmath>

namespace fs2::telemetry {

// ---- P2Quantile -------------------------------------------------------------

P2Quantile::P2Quantile(double quantile) : quantile_(quantile) {
  desired_ = {1.0, 1.0 + 2.0 * quantile_, 1.0 + 4.0 * quantile_, 3.0 + 2.0 * quantile_, 5.0};
  increments_ = {0.0, quantile_ / 2.0, quantile_, (1.0 + quantile_) / 2.0, 1.0};
}

void P2Quantile::add_warmup(double value) {
  heights_[count_++] = value;
  if (count_ == 5) {
    std::sort(heights_.begin(), heights_.end());
    for (std::size_t i = 0; i < 5; ++i) positions_[i] = static_cast<double>(i + 1);
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact: linear-interpolated percentile over the sorted observations,
    // mirroring stats::percentile.
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + static_cast<long>(count_));
    const double rank = quantile_ * static_cast<double>(count_ - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, count_ - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }
  return heights_[2];
}

// ---- StreamingMoments -------------------------------------------------------

StreamingMoments::StreamingMoments() : p50_(0.50), p95_(0.95), p99_(0.99) {}

double StreamingMoments::variance() const {
  return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
}

double StreamingMoments::stddev() const { return std::sqrt(variance()); }

// ---- StreamingAggregator ----------------------------------------------------

StreamingSummary StreamingAggregator::summarize() const {
  // Fold the pending samples that qualify under the current end time into a
  // COPY of the running moments — summarize() must not consume state, the
  // stream may keep going (mid-run peeks, repeated phase finalization).
  StreamingMoments window = trimmed_;
  const double threshold = last_time_s_ - stop_delta_s_;
  pending_.for_each([&](const Sample& s) {
    if (s.time_s <= threshold) window.add(s.value);
  });

  // The untrimmed shadow is only consulted when the trimmed window is empty
  // — exactly the condition under which it was never frozen, so it holds
  // the complete untrimmed stream whenever it is read.
  const StreamingMoments& source = window.count() > 0 ? window : all_;
  StreamingSummary summary;
  summary.samples = source.count();
  if (source.count() > 0) {
    summary.mean = source.mean();
    summary.stddev = source.stddev();
    summary.min = source.min();
    summary.max = source.max();
    summary.p50 = source.p50();
    summary.p95 = source.p95();
    summary.p99 = source.p99();
  }
  summary.trim_fallback = window.count() == 0 && count_ > 0;
  return summary;
}

}  // namespace fs2::telemetry
