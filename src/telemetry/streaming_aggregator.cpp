#include "telemetry/streaming_aggregator.hpp"

#include <algorithm>
#include <cmath>

namespace fs2::telemetry {

// ---- P2Quantile -------------------------------------------------------------

P2Quantile::P2Quantile(double quantile) : quantile_(quantile) {
  desired_ = {1.0, 1.0 + 2.0 * quantile_, 1.0 + 4.0 * quantile_, 3.0 + 2.0 * quantile_, 5.0};
  increments_ = {0.0, quantile_ / 2.0, quantile_, (1.0 + quantile_) / 2.0, 1.0};
}

void P2Quantile::add(double value) {
  if (count_ < 5) {
    heights_[count_++] = value;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (std::size_t i = 0; i < 5; ++i) positions_[i] = static_cast<double>(i + 1);
    }
    return;
  }

  // Locate the cell and update the extreme markers.
  std::size_t cell;
  if (value < heights_[0]) {
    heights_[0] = value;
    cell = 0;
  } else if (value >= heights_[4]) {
    heights_[4] = std::max(heights_[4], value);
    cell = 3;
  } else {
    cell = 0;
    while (cell < 3 && value >= heights_[cell + 1]) ++cell;
  }

  ++count_;
  for (std::size_t i = cell + 1; i < 5; ++i) positions_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Nudge the three interior markers toward their desired positions with a
  // piecewise-parabolic height prediction (linear when the parabola would
  // leave the neighbouring markers' bracket).
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const bool move_right = d >= 1.0 && positions_[i + 1] - positions_[i] > 1.0;
    const bool move_left = d <= -1.0 && positions_[i - 1] - positions_[i] < -1.0;
    if (!move_right && !move_left) continue;
    const int si = move_right ? 1 : -1;
    const double s = static_cast<double>(si);
    const double qp = heights_[i + 1], q = heights_[i], qm = heights_[i - 1];
    const double np = positions_[i + 1], n = positions_[i], nm = positions_[i - 1];
    double candidate = q + s / (np - nm) *
                               ((n - nm + s) * (qp - q) / (np - n) +
                                (np - n - s) * (q - qm) / (n - nm));
    if (!(qm < candidate && candidate < qp))
      candidate = q + s * (heights_[i + si] - q) / (positions_[i + si] - n);
    heights_[i] = candidate;
    positions_[i] += s;
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact: linear-interpolated percentile over the sorted observations,
    // mirroring stats::percentile.
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + static_cast<long>(count_));
    const double rank = quantile_ * static_cast<double>(count_ - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, count_ - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }
  return heights_[2];
}

// ---- StreamingMoments -------------------------------------------------------

StreamingMoments::StreamingMoments() : p50_(0.50), p95_(0.95), p99_(0.99) {}

void StreamingMoments::add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  p50_.add(value);
  p95_.add(value);
  p99_.add(value);
}

double StreamingMoments::variance() const {
  return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
}

double StreamingMoments::stddev() const { return std::sqrt(variance()); }

// ---- StreamingAggregator ----------------------------------------------------

void StreamingAggregator::add(double time_s, double value) {
  all_.add(value);
  last_time_s_ = any_ ? std::max(last_time_s_, time_s) : time_s;
  any_ = true;
  if (time_s < start_delta_s_) return;  // causal start trim
  pending_.push_back(Sample{time_s, value});
  // Samples at or before (newest - stop_delta) stay inside the window for
  // every possible future end time (end only grows), so they can be folded
  // into the running moments now. Same float comparison as the batch path:
  // t <= end - stop_delta.
  const double threshold = last_time_s_ - stop_delta_s_;
  while (!pending_.empty() && pending_.front().time_s <= threshold) {
    trimmed_.add(pending_.front().value);
    pending_.pop_front();
  }
}

StreamingSummary StreamingAggregator::summarize() const {
  // Fold the pending samples that qualify under the current end time into a
  // COPY of the running moments — summarize() must not consume state, the
  // stream may keep going (mid-run peeks, repeated phase finalization).
  StreamingMoments window = trimmed_;
  const double threshold = last_time_s_ - stop_delta_s_;
  for (const Sample& s : pending_)
    if (s.time_s <= threshold) window.add(s.value);

  const StreamingMoments& source = window.count() > 0 ? window : all_;
  StreamingSummary summary;
  summary.samples = source.count();
  if (source.count() > 0) {
    summary.mean = source.mean();
    summary.stddev = source.stddev();
    summary.min = source.min();
    summary.max = source.max();
    summary.p50 = source.p50();
    summary.p95 = source.p95();
    summary.p99 = source.p99();
  }
  summary.trim_fallback = window.count() == 0 && all_.count() > 0;
  return summary;
}

}  // namespace fs2::telemetry
