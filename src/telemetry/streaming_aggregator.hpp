#pragma once

#include <array>
#include <cstddef>
#include <deque>

#include "telemetry/sample.hpp"

namespace fs2::telemetry {

/// P² (piecewise-parabolic) single-quantile estimator, Jain & Chlamtac 1985:
/// five markers track the running quantile of a stream in O(1) memory and
/// O(1) per observation — the standard production-telemetry answer to
/// "p95 without keeping the samples". Exact while fewer than five
/// observations have arrived (it falls back to the sorted array).
class P2Quantile {
 public:
  explicit P2Quantile(double quantile);

  void add(double value);
  std::size_t count() const { return count_; }

  /// Current estimate; exact for count() < 5, asymptotically exact for
  /// stationary streams. Calling with count() == 0 is a caller error and
  /// returns 0.
  double value() const;

 private:
  double quantile_;
  std::size_t count_ = 0;
  std::array<double, 5> heights_{};     ///< marker heights (q0..q4)
  std::array<double, 5> positions_{};   ///< actual marker positions (1-based)
  std::array<double, 5> desired_{};     ///< desired marker positions
  std::array<double, 5> increments_{};  ///< desired-position increments
};

/// Streaming summary of one value stream: Welford mean/stddev (population,
/// matching util/stats), exact min/max, and P² estimates of the p50/p95/p99
/// quantiles. Constant memory regardless of stream length.
class StreamingMoments {
 public:
  StreamingMoments();

  void add(double value);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;  ///< population variance; 0 when empty
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double p50() const { return p50_.value(); }
  double p95() const { return p95_.value(); }
  double p99() const { return p99_.value(); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  P2Quantile p50_;
  P2Quantile p95_;
  P2Quantile p99_;
};

/// Finished aggregate of one stream.
struct StreamingSummary {
  std::size_t samples = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  /// True when the trim window removed every sample and the summary fell
  /// back to untrimmed aggregation (callers log a warning; short smoke runs
  /// must not abort — the paper's 5 s/2 s defaults assume long runs).
  bool trim_fallback = false;
};

/// One-pass aggregation with the paper's start/stop-delta trimming
/// semantics (Sec. III-D) and NO retained series. Reproduces batch
/// trimming exactly: a sample at time t is included iff
/// `t >= start_delta && t <= end - stop_delta` where `end` is the last
/// sample's timestamp.
///
/// `start_delta` is causal (drop on arrival). `end` is only known when the
/// stream finishes, so the aggregator holds back samples younger than
/// `stop_delta` in a small deque and flushes them into the running moments
/// once newer samples prove they are inside the window — the buffer is
/// bounded by stop_delta x sample rate, not by run length (memory is
/// O(window), the property that unblocks week-long campaigns).
///
/// Timestamps must be non-decreasing (every producer in this codebase
/// stamps monotonically). An untrimmed shadow aggregate is kept so that a
/// run shorter than start+stop deltas degrades to the untrimmed summary
/// instead of having nothing to report.
class StreamingAggregator {
 public:
  StreamingAggregator(double start_delta_s, double stop_delta_s)
      : start_delta_s_(start_delta_s), stop_delta_s_(stop_delta_s) {}

  void add(double time_s, double value);

  /// Total samples observed (before trimming).
  std::size_t total_samples() const { return all_.count(); }
  /// Samples currently held back awaiting proof they precede the stop
  /// delta (bounded by stop_delta x sample rate).
  std::size_t pending() const { return pending_.size(); }
  double start_delta_s() const { return start_delta_s_; }
  double stop_delta_s() const { return stop_delta_s_; }

  /// Aggregate as of the samples seen so far, treating the newest
  /// timestamp as the end of the run. Idempotent (does not consume state),
  /// so mid-stream peeks and repeated finalization both work. When
  /// trimming removed every sample but the stream was non-empty, returns
  /// the untrimmed aggregate with `trim_fallback` set.
  StreamingSummary summarize() const;

 private:
  double start_delta_s_;
  double stop_delta_s_;
  StreamingMoments trimmed_;      ///< samples proven inside the trim window
  StreamingMoments all_;          ///< untrimmed shadow (fallback)
  std::deque<Sample> pending_;    ///< survived start trim, awaiting stop proof
  double last_time_s_ = 0.0;
  bool any_ = false;
};

}  // namespace fs2::telemetry
