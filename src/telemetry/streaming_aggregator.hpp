#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <vector>

#include "telemetry/sample.hpp"
#include "trace/tracer.hpp"

namespace fs2::telemetry {

/// Grow-on-demand FIFO over a contiguous power-of-two ring — the stop-delta
/// holdback buffer. std::deque's block-map indirection costs several
/// nanoseconds per push/pop, which the aggregator pays per sample; this is
/// a load, a store, and a mask. Capacity doubles when full (the holdback is
/// bounded by stop_delta x sample rate, so growth stops quickly).
class SampleFifo {
 public:
  bool empty() const { return head_ == tail_; }
  std::size_t size() const { return tail_ - head_; }

  const Sample& front() const { return ring_[head_ & mask_]; }

  void push_back(const Sample& sample) {
    if (size() == ring_.size()) grow();
    ring_[tail_++ & mask_] = sample;
  }

  void pop_front() { ++head_; }

  /// Oldest-first visit (summarize()'s idempotent window peek).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = head_; i != tail_; ++i) fn(ring_[i & mask_]);
  }

 private:
  void grow() {
    const std::size_t capacity = ring_.empty() ? 64 : ring_.size() * 2;
    std::vector<Sample> next(capacity);
    const std::size_t count = size();
    for (std::size_t i = 0; i < count; ++i) next[i] = ring_[(head_ + i) & mask_];
    ring_ = std::move(next);
    head_ = 0;
    tail_ = count;
    mask_ = capacity - 1;
  }

  std::vector<Sample> ring_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t mask_ = 0;
};

/// P² (piecewise-parabolic) single-quantile estimator, Jain & Chlamtac 1985:
/// five markers track the running quantile of a stream in O(1) memory and
/// O(1) per observation — the standard production-telemetry answer to
/// "p95 without keeping the samples". Exact while fewer than five
/// observations have arrived (it falls back to the sorted array).
///
/// add() lives in the header: it sits on every sample of every summarized
/// channel (three estimators per stream), which makes it the single hottest
/// function of the telemetry layer — the cluster merge ingests millions of
/// samples per second through it and cannot afford a call per observation.
class P2Quantile {
 public:
  explicit P2Quantile(double quantile);

  void add(double value) {
    if (count_ < 5) {
      add_warmup(value);
      return;
    }

    // Locate the cell and update the extreme markers. The interior search
    // is branchless — the marker heights are sorted, so the cell index is
    // the count of markers at or below the value; data-dependent branches
    // here would mispredict on every oscillating stream.
    std::size_t cell;
    if (value < heights_[0]) {
      heights_[0] = value;
      cell = 0;
    } else if (value >= heights_[4]) {
      heights_[4] = std::max(heights_[4], value);
      cell = 3;
    } else {
      cell = static_cast<std::size_t>(value >= heights_[1]) +
             static_cast<std::size_t>(value >= heights_[2]) +
             static_cast<std::size_t>(value >= heights_[3]);
    }

    ++count_;
    positions_[1] += static_cast<double>(cell < 1);
    positions_[2] += static_cast<double>(cell < 2);
    positions_[3] += static_cast<double>(cell < 3);
    positions_[4] += 1.0;
    // desired_[0] never moves (increment 0) and desired_[4] is never read by
    // the marker adjustment below — only the interior markers accumulate.
    desired_[1] += increments_[1];
    desired_[2] += increments_[2];
    desired_[3] += increments_[3];

    // Nudge the three interior markers toward their desired positions with a
    // piecewise-parabolic height prediction (linear when the parabola would
    // leave the neighbouring markers' bracket).
    for (int i = 1; i <= 3; ++i) {
      const double d = desired_[i] - positions_[i];
      const bool move_right = d >= 1.0 && positions_[i + 1] - positions_[i] > 1.0;
      const bool move_left = d <= -1.0 && positions_[i - 1] - positions_[i] < -1.0;
      if (!move_right && !move_left) continue;
      const int si = move_right ? 1 : -1;
      const double s = static_cast<double>(si);
      const double qp = heights_[i + 1], q = heights_[i], qm = heights_[i - 1];
      const double np = positions_[i + 1], n = positions_[i], nm = positions_[i - 1];
      double candidate = q + s / (np - nm) *
                                 ((n - nm + s) * (qp - q) / (np - n) +
                                  (np - n - s) * (q - qm) / (n - nm));
      if (!(qm < candidate && candidate < qp))
        candidate = q + s * (heights_[i + si] - q) / (positions_[i + si] - n);
      heights_[i] = candidate;
      positions_[i] += s;
    }
  }

  std::size_t count() const { return count_; }

  /// Current estimate; exact for count() < 5, asymptotically exact for
  /// stationary streams. Calling with count() == 0 is a caller error and
  /// returns 0.
  double value() const;

 private:
  void add_warmup(double value);  ///< first five observations (cold path)

  double quantile_;
  std::size_t count_ = 0;
  std::array<double, 5> heights_{};     ///< marker heights (q0..q4)
  std::array<double, 5> positions_{};   ///< actual marker positions (1-based)
  std::array<double, 5> desired_{};     ///< desired marker positions
  std::array<double, 5> increments_{};  ///< desired-position increments
};

/// Streaming summary of one value stream: Welford mean/stddev (population,
/// matching util/stats), exact min/max, and P² estimates of the p50/p95/p99
/// quantiles. Constant memory regardless of stream length. add() is inline
/// for the same reason P2Quantile::add is — the three estimator updates of
/// one observation are independent dependency chains the CPU overlaps, but
/// only once they are visible in one compilation unit.
class StreamingMoments {
 public:
  StreamingMoments();

  void add(double value) {
    if (count_ == 0) {
      min_ = max_ = value;
    } else {
      min_ = std::min(min_, value);
      max_ = std::max(max_, value);
    }
    ++count_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
    p50_.add(value);
    p95_.add(value);
    p99_.add(value);
  }

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;  ///< population variance; 0 when empty
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double p50() const { return p50_.value(); }
  double p95() const { return p95_.value(); }
  double p99() const { return p99_.value(); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  P2Quantile p50_;
  P2Quantile p95_;
  P2Quantile p99_;
};

/// Finished aggregate of one stream.
struct StreamingSummary {
  std::size_t samples = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  /// True when the trim window removed every sample and the summary fell
  /// back to untrimmed aggregation (callers log a warning; short smoke runs
  /// must not abort — the paper's 5 s/2 s defaults assume long runs).
  bool trim_fallback = false;
};

/// One-pass aggregation with the paper's start/stop-delta trimming
/// semantics (Sec. III-D) and NO retained series. Reproduces batch
/// trimming exactly: a sample at time t is included iff
/// `t >= start_delta && t <= end - stop_delta` where `end` is the last
/// sample's timestamp.
///
/// `start_delta` is causal (drop on arrival). `end` is only known when the
/// stream finishes, so the aggregator holds back samples younger than
/// `stop_delta` in a small deque and flushes them into the running moments
/// once newer samples prove they are inside the window — the buffer is
/// bounded by stop_delta x sample rate, not by run length (memory is
/// O(window), the property that unblocks week-long campaigns).
///
/// Timestamps must be non-decreasing (every producer in this codebase
/// stamps monotonically). An untrimmed shadow aggregate is kept so that a
/// run shorter than start+stop deltas degrades to the untrimmed summary
/// instead of having nothing to report. The shadow freezes as soon as the
/// trimmed window is provably non-empty — from then on summarize() can
/// never fall back to it, so updating it would be pure waste; this halves
/// the steady-state ingest cost without changing any reachable output.
class StreamingAggregator {
 public:
  StreamingAggregator(double start_delta_s, double stop_delta_s)
      : start_delta_s_(start_delta_s), stop_delta_s_(stop_delta_s) {}

  void add(double time_s, double value) {
    ++count_;
    if (trimmed_.count() == 0) all_.add(value);
    last_time_s_ = any_ ? std::max(last_time_s_, time_s) : time_s;
    any_ = true;
    if (time_s < start_delta_s_) return;  // causal start trim
    pending_.push_back(Sample{time_s, value});
    // Samples at or before (newest - stop_delta) stay inside the window for
    // every possible future end time (end only grows), so they can be folded
    // into the running moments now. Same float comparison as the batch path:
    // t <= end - stop_delta.
    const double threshold = last_time_s_ - stop_delta_s_;
    while (!pending_.empty() && pending_.front().time_s <= threshold) {
      trimmed_.add(pending_.front().value);
      pending_.pop_front();
    }
  }

  /// Batched ingest — reaches the exact state per-sample add() calls would:
  /// the same samples fold into the same moments in the same order; the
  /// batch form only hoists the bookkeeping (shadow check, threshold) out
  /// of the loop and lets proven-inside-the-window samples skip the
  /// holdback round trip. (The untrimmed shadow may receive samples a
  /// per-sample run would have skipped when the trimmed window first fills
  /// mid-batch — unobservable, because a non-empty trimmed window means the
  /// shadow is never read again.)
  void add_batch(const Sample* samples, std::size_t count) {
    if (count == 0) return;
    TRACE_SPAN("telemetry.aggregator.add_batch");
    count_ += count;
    if (trimmed_.count() == 0)
      for (std::size_t i = 0; i < count; ++i) all_.add(samples[i].value);
    // Producers stamp monotonically (the bus contract), so the batch's last
    // timestamp is its newest.
    const double newest = samples[count - 1].time_s;
    last_time_s_ = any_ ? std::max(last_time_s_, newest) : newest;
    any_ = true;
    const double threshold = last_time_s_ - stop_delta_s_;
    while (!pending_.empty() && pending_.front().time_s <= threshold) {
      trimmed_.add(pending_.front().value);
      pending_.pop_front();
    }
    for (std::size_t i = 0; i < count; ++i) {
      const Sample& sample = samples[i];
      if (sample.time_s < start_delta_s_) continue;  // causal start trim
      // Already provably inside the window (end only grows): straight into
      // the moments, in arrival order — the holdback would fold it at this
      // exact point anyway.
      if (sample.time_s <= threshold)
        trimmed_.add(sample.value);
      else
        pending_.push_back(sample);
    }
  }

  /// Total samples observed (before trimming).
  std::size_t total_samples() const { return count_; }
  /// Samples currently held back awaiting proof they precede the stop
  /// delta (bounded by stop_delta x sample rate).
  std::size_t pending() const { return pending_.size(); }
  double start_delta_s() const { return start_delta_s_; }
  double stop_delta_s() const { return stop_delta_s_; }

  /// Aggregate as of the samples seen so far, treating the newest
  /// timestamp as the end of the run. Idempotent (does not consume state),
  /// so mid-stream peeks and repeated finalization both work. When
  /// trimming removed every sample but the stream was non-empty, returns
  /// the untrimmed aggregate with `trim_fallback` set.
  StreamingSummary summarize() const;

 private:
  double start_delta_s_;
  double stop_delta_s_;
  StreamingMoments trimmed_;      ///< samples proven inside the trim window
  /// Untrimmed shadow (fallback). Frozen — no longer updated — once
  /// trimmed_ has its first sample: summarize() only reads it when the
  /// trimmed window is empty, which can no longer happen.
  StreamingMoments all_;
  SampleFifo pending_;            ///< survived start trim, awaiting stop proof
  std::size_t count_ = 0;         ///< all samples ever observed
  double last_time_s_ = 0.0;
  bool any_ = false;
};

}  // namespace fs2::telemetry
