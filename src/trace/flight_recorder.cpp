#include "trace/flight_recorder.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>

namespace fs2::trace {

namespace {

// Signal-handler state: two fixed buffers, the handler writes whichever one
// `g_active` points at. republish_locked() renders into the inactive buffer
// and flips the index, so the handler always sees a complete dump even if
// it fires mid-republish.
constexpr std::size_t kSignalBufBytes = 64 * 1024;
char g_buf[2][kSignalBufBytes];
std::atomic<std::size_t> g_len[2] = {{0}, {0}};
std::atomic<int> g_active{0};
std::atomic<int> g_fd{-1};
std::atomic<bool> g_handlers_installed{false};

void flight_signal_handler(int signo) {
  const int fd = g_fd.load(std::memory_order_acquire);
  if (fd >= 0) {
    const int slot = g_active.load(std::memory_order_acquire);
    const std::size_t len = g_len[slot].load(std::memory_order_acquire);
    std::size_t off = 0;
    while (off < len) {
      const ssize_t n = ::write(fd, g_buf[slot] + off, len - off);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
    ::fsync(fd);
  }
  // Restore the default disposition and re-raise so the process still dies
  // with the original signal (exit status visible to supervisors).
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

}  // namespace

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::configure(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) ::close(fd_);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  path_ = path;
  g_fd.store(fd_, std::memory_order_release);
  if (!g_handlers_installed.exchange(true)) {
    ::signal(SIGTERM, flight_signal_handler);
    ::signal(SIGINT, flight_signal_handler);
  }
  republish_locked();
}

void FlightRecorder::append(std::deque<std::string>& ring, std::size_t cap,
                            const std::string& line) {
  std::lock_guard<std::mutex> lock(mutex_);
  ring.push_back(line);
  while (ring.size() > cap) ring.pop_front();
  if (fd_ >= 0) republish_locked();
}

void FlightRecorder::note_alert(const std::string& line) {
  append(alerts_, kMaxAlerts, line);
}
void FlightRecorder::note_event(const std::string& line) {
  append(events_, kMaxEvents, line);
}
void FlightRecorder::note_metrics(const std::string& line) {
  append(metrics_, kMaxMetricLines, line);
}

std::string FlightRecorder::render_locked() const {
  std::string out;
  out += "# fs2 flight recorder\n";
  out += "## alerts (" + std::to_string(alerts_.size()) + ")\n";
  for (const std::string& l : alerts_) out += l + "\n";
  out += "## events (" + std::to_string(events_.size()) + ")\n";
  for (const std::string& l : events_) out += l + "\n";
  out += "## metrics (" + std::to_string(metrics_.size()) + ")\n";
  for (const std::string& l : metrics_) out += l + "\n";
  return out;
}

std::string FlightRecorder::serialize() {
  std::lock_guard<std::mutex> lock(mutex_);
  return render_locked();
}

void FlightRecorder::republish_locked() {
  const std::string out = render_locked();
  const int slot = 1 - g_active.load(std::memory_order_acquire);
  const std::size_t len = std::min(out.size(), kSignalBufBytes);
  std::memcpy(g_buf[slot], out.data(), len);
  g_len[slot].store(len, std::memory_order_release);
  g_active.store(slot, std::memory_order_release);
}

void FlightRecorder::dump(const std::string& reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return;
  const std::string text = "# reason: " + reason + "\n" + render_locked();
  ::lseek(fd_, 0, SEEK_SET);
  if (::ftruncate(fd_, 0) != 0) { /* best effort */ }
  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t n = ::write(fd_, text.data() + off, text.size() - off);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  ::fsync(fd_);
}

void FlightRecorder::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  alerts_.clear();
  events_.clear();
  metrics_.clear();
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  path_.clear();
  g_fd.store(-1, std::memory_order_release);
  g_len[0].store(0, std::memory_order_release);
  g_len[1].store(0, std::memory_order_release);
}

}  // namespace fs2::trace
