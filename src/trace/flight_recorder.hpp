#pragma once

#include <cstddef>
#include <deque>
#include <mutex>
#include <string>

namespace fs2::trace {

/// Crash-surviving ring of recent observability state: alerts, lifecycle
/// events, and the last N metric snapshot lines, each ring independently
/// bounded so a chatty source can't evict the others. The recorder exists
/// so post-mortems don't depend on the run finishing — the paper's whole
/// methodology is watching a campaign evolve, and the most interesting
/// campaigns are the ones that die.
///
/// Three exits write the dump:
///  - dump(reason): normal code paths (watchdog trip, node loss, run end
///    with alerts) write the configured --flight-out file directly.
///  - SIGTERM/SIGINT: configure() pre-opens the output fd and keeps the
///    serialized dump in a pre-rendered buffer republished after every
///    note_*() call, so the signal handler is a single async-signal-safe
///    ::write of bytes that already exist — no allocation, no locks.
///  - serialize(): agents ship the text to the coordinator in a
///    kFlightRecord frame on abnormal exit.
class FlightRecorder {
 public:
  static constexpr std::size_t kMaxAlerts = 64;
  static constexpr std::size_t kMaxEvents = 64;
  static constexpr std::size_t kMaxMetricLines = 128;

  static FlightRecorder& instance();

  /// Enable crash dumping: opens `path` (truncating), installs SIGTERM and
  /// SIGINT handlers that write the current buffer and re-raise. Safe to
  /// call more than once (last path wins).
  void configure(const std::string& path);

  void note_alert(const std::string& line);
  void note_event(const std::string& line);
  void note_metrics(const std::string& line);

  /// Render the dump text (header + the three rings, oldest first).
  std::string serialize();

  /// Write the dump to the configured path now (no-op when unconfigured).
  void dump(const std::string& reason);

  /// Drop all recorded lines and close any configured output. Test hook —
  /// keeps the singleton from leaking state across fixtures.
  void reset();

 private:
  FlightRecorder() = default;

  void append(std::deque<std::string>& ring, std::size_t cap, const std::string& line);
  std::string render_locked() const;  ///< dump text (mutex held)
  void republish_locked();  ///< rebuild the signal-handler buffer (mutex held)

  std::mutex mutex_;
  std::deque<std::string> alerts_;
  std::deque<std::string> events_;
  std::deque<std::string> metrics_;
  int fd_ = -1;
  std::string path_;
};

}  // namespace fs2::trace
