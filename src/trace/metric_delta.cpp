#include "trace/metric_delta.hpp"

namespace fs2::trace {

MetricDelta MetricDeltaTracker::collect() {
  MetricDelta out;
  const std::vector<IndexedMetric> now = registry_->indexed_snapshot();
  if (prev_counters_.size() < now.size()) prev_counters_.resize(now.size(), 0);
  if (prev_sums_.size() < now.size()) prev_sums_.resize(now.size(), 0.0);
  if (prev_buckets_.size() < now.size()) prev_buckets_.resize(now.size());

  for (const IndexedMetric& m : now) {
    if (m.id >= defs_sent_) out.defs.push_back(MetricDefRec{m.id, m.name, m.kind});
    switch (m.kind) {
      case MetricKind::kCounter: {
        const std::uint64_t prev = prev_counters_[m.id];
        if (m.counter != prev || m.id >= defs_sent_) {
          // Registry::reset() (tests) can move a counter backwards; re-ship
          // the absolute value then so the fold doesn't wrap.
          const std::uint64_t delta = m.counter >= prev ? m.counter - prev : m.counter;
          out.counters.push_back(CounterDeltaRec{m.id, delta});
          prev_counters_[m.id] = m.counter;
        }
        break;
      }
      case MetricKind::kGauge:
        out.gauges.push_back(GaugeValueRec{m.id, m.gauge});
        break;
      case MetricKind::kHistogram: {
        std::vector<std::uint64_t>& prev = prev_buckets_[m.id];
        if (prev.size() < m.hist.buckets.size()) prev.resize(m.hist.buckets.size(), 0);
        HistogramDeltaRec rec;
        rec.id = m.id;
        rec.max = m.hist.max;
        for (std::size_t b = 0; b < m.hist.buckets.size(); ++b) {
          const std::uint64_t cur = m.hist.buckets[b];
          const std::uint64_t delta = cur >= prev[b] ? cur - prev[b] : cur;
          if (delta == 0) continue;
          rec.buckets.emplace_back(static_cast<std::uint32_t>(b), delta);
          rec.count_delta += delta;
          prev[b] = cur;
        }
        rec.sum_delta = m.hist.sum - prev_sums_[m.id];
        prev_sums_[m.id] = m.hist.sum;
        if (rec.count_delta > 0 || m.id >= defs_sent_) out.hists.push_back(std::move(rec));
        break;
      }
    }
  }
  defs_sent_ = now.size();
  return out;
}

}  // namespace fs2::trace
