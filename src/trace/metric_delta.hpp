#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "trace/registry.hpp"

namespace fs2::trace {

/// First-seen metric definition: ships once per metric per connection so
/// subsequent deltas reference metrics by their stable registry id instead
/// of repeating names every interval.
struct MetricDefRec {
  std::uint32_t id = 0;
  std::string name;
  MetricKind kind = MetricKind::kCounter;
};

struct CounterDeltaRec {
  std::uint32_t id = 0;
  std::uint64_t delta = 0;
};

struct GaugeValueRec {
  std::uint32_t id = 0;
  double value = 0.0;
};

/// Sparse histogram increment: only buckets that grew since the last
/// collection cross the wire. `max` is the running maximum (idempotent under
/// re-fold), everything else is additive.
struct HistogramDeltaRec {
  std::uint32_t id = 0;
  std::uint64_t count_delta = 0;
  double sum_delta = 0.0;
  double max = 0.0;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;  ///< (index, delta)
};

/// One collection interval's worth of registry movement. Folding a sequence
/// of these (coordinator side) reproduces the registry totals: deltas are
/// associative sums, gauges are last-write-wins, histogram buckets add.
struct MetricDelta {
  std::vector<MetricDefRec> defs;         ///< metrics first seen this interval
  std::vector<CounterDeltaRec> counters;  ///< nonzero deltas only
  std::vector<GaugeValueRec> gauges;      ///< every gauge's current value
  std::vector<HistogramDeltaRec> hists;   ///< nonzero count deltas only

  bool empty() const {
    return defs.empty() && counters.empty() && gauges.empty() && hists.empty();
  }
};

/// Diffs a Registry against its previous collection. One tracker per
/// connection (the watermark is what the peer has already seen); collect()
/// is called once per --metrics-interval, so it allocates freely.
class MetricDeltaTracker {
 public:
  explicit MetricDeltaTracker(Registry& registry) : registry_(&registry) {}

  MetricDelta collect();

 private:
  Registry* registry_;
  std::size_t defs_sent_ = 0;                          ///< ids below this shipped defs
  std::vector<std::uint64_t> prev_counters_;           ///< by id
  std::vector<double> prev_sums_;                      ///< by id (histograms)
  std::vector<std::vector<std::uint64_t>> prev_buckets_;  ///< by id
};

}  // namespace fs2::trace
