#include "trace/registry.hpp"

#include "util/error.hpp"

namespace fs2::trace {

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Entry& e : entries_) {
    if (e.name != name) continue;
    if (!e.counter) throw Error("registry: '" + name + "' is a gauge, not a counter");
    return *e.counter;
  }
  entries_.push_back(Entry{name, std::make_unique<Counter>(), nullptr});
  return *entries_.back().counter;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Entry& e : entries_) {
    if (e.name != name) continue;
    if (!e.gauge) throw Error("registry: '" + name + "' is a counter, not a gauge");
    return *e.gauge;
  }
  entries_.push_back(Entry{name, nullptr, std::make_unique<Gauge>()});
  return *entries_.back().gauge;
}

std::vector<MetricSnapshot> Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    MetricSnapshot s;
    s.name = e.name;
    s.is_counter = e.counter != nullptr;
    s.value = e.counter ? static_cast<double>(e.counter->value()) : e.gauge->value();
    out.push_back(std::move(s));
  }
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Entry& e : entries_) {
    if (e.counter) e.counter->reset();
    if (e.gauge) e.gauge->reset();
  }
}

}  // namespace fs2::trace
