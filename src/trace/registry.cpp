#include "trace/registry.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace fs2::trace {

// ---- HistogramSnapshot ------------------------------------------------------

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
  if (other.buckets.empty()) return;
  if (buckets.size() < other.buckets.size()) buckets.resize(other.buckets.size(), 0);
  for (std::size_t i = 0; i < other.buckets.size(); ++i) buckets[i] += other.buckets[i];
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation, 1-based: ceil(q * count), at least 1.
  const std::uint64_t target =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= target) return std::min(Histogram::bucket_upper(i), max);
  }
  return max;
}

// ---- Histogram --------------------------------------------------------------

std::size_t Histogram::bucket_index(double v) {
  if (!(v > 0.0)) return 0;  // non-positive and NaN clamp to the bottom bucket
  int exp = 0;
  const double m = std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1)
  const int index = (exp + kExpOffset) * 2 + (m >= 0.75 ? 1 : 0);
  if (index < 0) return 0;
  if (index >= static_cast<int>(kBuckets)) return kBuckets - 1;
  return static_cast<std::size_t>(index);
}

double Histogram::bucket_upper(std::size_t index) {
  const int exp = static_cast<int>(index / 2) - kExpOffset;
  return std::ldexp(index % 2 == 0 ? 0.75 : 1.0, exp);
}

HistogramSnapshot Histogram::snapshot(std::string name) const {
  HistogramSnapshot s;
  s.name = std::move(name);
  s.buckets.resize(kBuckets, 0);
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    s.buckets[i] = n;
    s.count += n;
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

// ---- Registry ---------------------------------------------------------------

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

namespace {
std::string kind_mismatch(const std::string& name, bool counter, bool gauge,
                          const char* wanted) {
  const char* actual = counter ? "counter" : gauge ? "gauge" : "histogram";
  return "registry: '" + name + "' is a " + actual + ", not a " + wanted;
}
}  // namespace

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Entry& e : entries_) {
    if (e.name != name) continue;
    if (!e.counter)
      throw Error(kind_mismatch(name, false, e.gauge != nullptr, "counter"));
    return *e.counter;
  }
  entries_.push_back(Entry{name, std::make_unique<Counter>(), nullptr, nullptr});
  return *entries_.back().counter;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Entry& e : entries_) {
    if (e.name != name) continue;
    if (!e.gauge)
      throw Error(kind_mismatch(name, e.counter != nullptr, false, "gauge"));
    return *e.gauge;
  }
  entries_.push_back(Entry{name, nullptr, std::make_unique<Gauge>(), nullptr});
  return *entries_.back().gauge;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Entry& e : entries_) {
    if (e.name != name) continue;
    if (!e.histogram)
      throw Error(kind_mismatch(name, e.counter != nullptr, e.gauge != nullptr,
                                "histogram"));
    return *e.histogram;
  }
  entries_.push_back(Entry{name, nullptr, nullptr, std::make_unique<Histogram>()});
  return *entries_.back().histogram;
}

std::vector<MetricSnapshot> Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    if (e.histogram) continue;
    MetricSnapshot s;
    s.name = e.name;
    s.is_counter = e.counter != nullptr;
    s.value = e.counter ? static_cast<double>(e.counter->value()) : e.gauge->value();
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<HistogramSnapshot> Registry::histogram_snapshots() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<HistogramSnapshot> out;
  for (const Entry& e : entries_) {
    if (e.histogram) out.push_back(e.histogram->snapshot(e.name));
  }
  return out;
}

std::vector<IndexedMetric> Registry::indexed_snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<IndexedMetric> out;
  out.reserve(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    IndexedMetric m;
    m.id = static_cast<std::uint32_t>(i);
    m.name = e.name;
    if (e.counter) {
      m.kind = MetricKind::kCounter;
      m.counter = e.counter->value();
    } else if (e.gauge) {
      m.kind = MetricKind::kGauge;
      m.gauge = e.gauge->value();
    } else {
      m.kind = MetricKind::kHistogram;
      m.hist = e.histogram->snapshot(std::string());
    }
    out.push_back(std::move(m));
  }
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Entry& e : entries_) {
    if (e.counter) e.counter->reset();
    if (e.gauge) e.gauge->reset();
    if (e.histogram) e.histogram->reset();
  }
}

}  // namespace fs2::trace
