#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace fs2::trace {

/// Monotonic event count. add() is one relaxed fetch_add; hot paths resolve
/// the Counter& once (registry lookup takes a mutex) and keep the reference.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, batch threshold).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A histogram's bucket counts frozen at snapshot time. Buckets are the
/// fixed log grid of Histogram, so snapshots from different histograms (or
/// different NODES — this is what kMetricUpdate folding merges) combine by
/// elementwise addition, which is associative and commutative: merging
/// per-node snapshots in any order, or merging partial-stream snapshots
/// against a whole-stream one, yields identical buckets.
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;  ///< best-effort (see Histogram::record)
  double max = 0.0;
  std::vector<std::uint64_t> buckets;  ///< empty == all zero

  void merge(const HistogramSnapshot& other);
  /// Upper bound of the bucket holding the q-quantile (q in [0,1]),
  /// clamped to the observed max. 0 when empty.
  double quantile(double q) const;
};

/// Log-bucketed value distribution (latencies, frame sizes, control error).
/// The grid is fixed: two buckets per octave (mantissa below/above 0.75),
/// 128 buckets spanning 2^-32 .. 2^32 — sub-nanosecond seconds up to
/// multi-gigabyte sizes — with under/overflow clamped to the edge buckets.
/// A fixed grid is what makes snapshots mergeable without rebinning.
///
/// record() is frexp + ONE relaxed fetch_add on the bucket, so it stays
/// within ~2x of Counter::add (the bench gate). sum/max are maintained with
/// relaxed load+store pairs — exact on the single-threaded record paths we
/// instrument, best-effort under concurrent writers; bucket counts are
/// always exact.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 128;
  static constexpr int kExpOffset = 32;  ///< bucket 0 starts at 2^-32

  void record(double v) {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.store(sum_.load(std::memory_order_relaxed) + v, std::memory_order_relaxed);
    if (v > max_.load(std::memory_order_relaxed))
      max_.store(v, std::memory_order_relaxed);
  }

  /// Bucket for a value: (exponent + offset) * 2 + (mantissa >= 0.75).
  static std::size_t bucket_index(double v);
  /// Exclusive upper bound of a bucket (ldexp of 0.75 or 1.0).
  static double bucket_upper(std::size_t index);

  HistogramSnapshot snapshot(std::string name) const;
  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

enum class MetricKind : std::uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

/// One registry entry at snapshot time.
struct MetricSnapshot {
  std::string name;
  double value = 0.0;
  bool is_counter = true;  ///< false = gauge
};

/// One registry entry in the INDEXED snapshot used by the metrics plane.
/// `id` is the entry's registration index — stable for the registry's
/// lifetime (entries are never removed), so delta trackers and the
/// coordinator's per-node fold key on it instead of re-hashing names.
struct IndexedMetric {
  std::uint32_t id = 0;
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t counter = 0;        ///< kind == kCounter
  double gauge = 0.0;               ///< kind == kGauge
  HistogramSnapshot hist;           ///< kind == kHistogram (name left empty)
};

/// Counter/gauge/histogram directory. Names are dotted paths mirroring the
/// span names ("cluster.bus.queued_samples", "reactor.wakeups").
/// Registration is mutex-guarded create-or-get; updates on the returned
/// references are lock-free. Snapshots are what agents ship to the
/// coordinator (kCounterSnapshot, kMetricUpdate) and what the status plane
/// reports.
///
/// instance() is the process-wide registry most instrumentation uses; the
/// class is also instantiable so each loopback SimAgent can own a private
/// registry and ship per-node metrics that the shared-process global could
/// not attribute.
class Registry {
 public:
  static Registry& instance();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Counters and gauges only (histograms have their own snapshot shape),
  /// registration order. What kCounterSnapshot and --status ship.
  std::vector<MetricSnapshot> snapshot() const;

  /// Every histogram's buckets, registration order, names filled in.
  std::vector<HistogramSnapshot> histogram_snapshots() const;

  /// Every entry with its stable id — the metrics-plane snapshot a
  /// MetricDeltaTracker diffs against its previous collection.
  std::vector<IndexedMetric> indexed_snapshot() const;

  /// Zero every entry (entries stay registered — references remain valid).
  /// Test/benchmark hook.
  void reset();

 private:
  struct Entry {
    std::string name;
    std::unique_ptr<Counter> counter;  ///< exactly one of the three set
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
};

}  // namespace fs2::trace
