#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace fs2::trace {

/// Monotonic event count. add() is one relaxed fetch_add; hot paths resolve
/// the Counter& once (registry lookup takes a mutex) and keep the reference.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, batch threshold).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// One registry entry at snapshot time.
struct MetricSnapshot {
  std::string name;
  double value = 0.0;
  bool is_counter = true;  ///< false = gauge
};

/// Process-wide counter/gauge directory. Names are dotted paths mirroring
/// the span names ("cluster.bus.queued_samples", "reactor.wakeups").
/// Registration is mutex-guarded create-or-get; updates on the returned
/// references are lock-free. Snapshots are what agents ship to the
/// coordinator (kCounterSnapshot) and what the status plane reports.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);

  /// All entries, registration order, counters and gauges interleaved.
  std::vector<MetricSnapshot> snapshot() const;

  /// Zero every entry (entries stay registered — references remain valid).
  /// Test/benchmark hook.
  void reset();

 private:
  struct Entry {
    std::string name;
    std::unique_ptr<Counter> counter;  ///< exactly one of counter/gauge set
    std::unique_ptr<Gauge> gauge;
  };

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
};

}  // namespace fs2::trace
