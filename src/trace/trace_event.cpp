#include "trace/trace_event.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <limits>

#include "util/error.hpp"

namespace fs2::trace {

namespace {

void write_escaped(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

/// trace_event timestamps are microseconds; emit as integers (Perfetto
/// accepts fractional but integers keep files small and diffs stable).
std::int64_t to_us(double seconds) {
  return static_cast<std::int64_t>(seconds * 1e6 + (seconds >= 0 ? 0.5 : -0.5));
}

}  // namespace

TraceCollector::NodeRecord& TraceCollector::node(const std::string& name) {
  for (NodeRecord& n : nodes_)
    if (n.name == name) return n;
  throw Error("trace: unknown node '" + name + "' (add_node first)");
}

int TraceCollector::add_node(const std::string& name, double offset_s) {
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (nodes_[i].name == name) return static_cast<int>(i);
  nodes_.push_back(NodeRecord{name, offset_s, {}, {}});
  return static_cast<int>(nodes_.size() - 1);
}

void TraceCollector::add_span(const std::string& node_name, Span span) {
  node(node_name).spans.push_back(std::move(span));
}

void TraceCollector::add_spans(const std::string& node_name, std::vector<Span> spans) {
  NodeRecord& n = node(node_name);
  if (n.spans.empty()) {
    n.spans = std::move(spans);
  } else {
    n.spans.insert(n.spans.end(), std::make_move_iterator(spans.begin()),
                   std::make_move_iterator(spans.end()));
  }
}

void TraceCollector::add_counters(const std::string& node_name,
                                  std::vector<MetricSnapshot> counters) {
  NodeRecord& n = node(node_name);
  n.counters.insert(n.counters.end(), std::make_move_iterator(counters.begin()),
                    std::make_move_iterator(counters.end()));
}

std::vector<Span> TraceCollector::merged_timeline() const {
  struct Keyed {
    Span span;
    std::size_t node_index;
  };
  std::vector<Keyed> all;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (const Span& s : nodes_[i].spans) {
      all.push_back(
          Keyed{Span{s.name, s.begin_s - nodes_[i].offset_s, s.end_s - nodes_[i].offset_s}, i});
    }
  }
  std::stable_sort(all.begin(), all.end(), [](const Keyed& a, const Keyed& b) {
    if (a.span.begin_s != b.span.begin_s) return a.span.begin_s < b.span.begin_s;
    if (a.node_index != b.node_index) return a.node_index < b.node_index;
    return a.span.name < b.span.name;
  });
  std::vector<Span> out;
  out.reserve(all.size());
  for (Keyed& k : all) out.push_back(std::move(k.span));
  return out;
}

std::vector<Span> TraceCollector::spans_for_node(const std::string& node_name) const {
  for (const NodeRecord& n : nodes_) {
    if (n.name != node_name) continue;
    std::vector<Span> out;
    out.reserve(n.spans.size());
    for (const Span& s : n.spans)
      out.push_back(Span{s.name, s.begin_s - n.offset_s, s.end_s - n.offset_s});
    return out;
  }
  throw Error("trace: unknown node '" + node_name + "'");
}

std::size_t TraceCollector::span_count() const {
  std::size_t total = 0;
  for (const NodeRecord& n : nodes_) total += n.spans.size();
  return total;
}

void TraceCollector::write_json(std::ostream& out) const {
  // Shift so the earliest rebased begin lands at ts 0 and everything else
  // stays non-negative — Perfetto renders negative timestamps poorly.
  double min_s = std::numeric_limits<double>::infinity();
  for (const NodeRecord& n : nodes_)
    for (const Span& s : n.spans) min_s = std::min(min_s, s.begin_s - n.offset_s);
  if (!(min_s < std::numeric_limits<double>::infinity())) min_s = 0.0;

  out << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };

  for (std::size_t pid = 0; pid < nodes_.size(); ++pid) {
    const NodeRecord& n = nodes_[pid];
    sep();
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid + 1
        << ",\"tid\":0,\"args\":{\"name\":";
    write_escaped(out, n.name);
    out << "}}";
    for (const Span& s : n.spans) {
      const double begin = s.begin_s - n.offset_s - min_s;
      const double dur = s.end_s - s.begin_s;
      sep();
      out << "{\"name\":";
      write_escaped(out, s.name);
      out << ",\"ph\":\"X\",\"ts\":" << to_us(begin) << ",\"dur\":" << to_us(std::max(dur, 0.0))
          << ",\"pid\":" << pid + 1 << ",\"tid\":1}";
    }
    // Counters land at the node's last rebased timestamp: they are
    // end-of-run snapshots, not a time series.
    double last = 0.0;
    for (const Span& s : n.spans) last = std::max(last, s.end_s - n.offset_s - min_s);
    for (const MetricSnapshot& c : n.counters) {
      sep();
      out << "{\"name\":";
      write_escaped(out, c.name);
      out << ",\"ph\":\"C\",\"ts\":" << to_us(last) << ",\"pid\":" << pid + 1
          << ",\"args\":{\"value\":" << c.value << "}}";
    }
  }
  out << "\n]}\n";
}

}  // namespace fs2::trace
