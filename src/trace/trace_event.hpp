#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "trace/registry.hpp"

namespace fs2::trace {

/// One closed span with an owned name — the cold, serializable counterpart
/// of SpanEvent. Timestamps are seconds in the ORIGIN node's steady clock;
/// the collector rebases them into the coordinator's clock at merge time.
struct Span {
  std::string name;
  double begin_s = 0.0;
  double end_s = 0.0;
};

/// Merges per-node span buffers and counter snapshots into one fleet
/// timeline and exports it as Chrome trace_event JSON (Perfetto-loadable).
///
/// Rebasing: clock sync estimates offset_s = agent_clock - coordinator_clock
/// for each node, so a span stamped t on the agent happened at
/// t - offset_s on the coordinator's clock. The coordinator itself is node 0
/// with offset 0. Exported timestamps are microseconds relative to the
/// earliest rebased span begin (Perfetto dislikes huge absolute epochs);
/// each node becomes one "process" (pid) named via metadata events.
class TraceCollector {
 public:
  /// Register a node; returns its pid. Registering the same name again
  /// returns the existing pid (the offset is not updated).
  int add_node(const std::string& name, double offset_s);

  void add_span(const std::string& node, Span span);
  void add_spans(const std::string& node, std::vector<Span> spans);
  void add_counters(const std::string& node, std::vector<MetricSnapshot> counters);

  /// All spans rebased into the coordinator clock, sorted by begin time
  /// (ties by node then name). The node name rides in `name` untouched —
  /// callers that need it use spans_for_node().
  std::vector<Span> merged_timeline() const;

  /// Rebased spans of one node, recording order.
  std::vector<Span> spans_for_node(const std::string& node) const;

  std::size_t span_count() const;
  bool empty() const { return span_count() == 0; }

  /// Write {"traceEvents":[...]} — "M" process_name metadata per node,
  /// "X" complete events per span, "C" counter events per snapshot entry.
  void write_json(std::ostream& out) const;

 private:
  struct NodeRecord {
    std::string name;
    double offset_s = 0.0;
    std::vector<Span> spans;  ///< local-clock timestamps as recorded
    std::vector<MetricSnapshot> counters;
  };

  NodeRecord& node(const std::string& name);

  std::vector<NodeRecord> nodes_;
};

}  // namespace fs2::trace
