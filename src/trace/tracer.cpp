#include "trace/tracer.hpp"

#include <memory>
#include <mutex>

namespace fs2::trace {

std::atomic<bool> Tracer::enabled_{false};

namespace {

/// Single-producer (owning thread) / single-consumer (drainer) ring.
/// head_ and tail_ are monotonically increasing event counts; the slot for
/// event n is n % capacity. Producer advances head_, consumer advances
/// tail_; neither writes the other's index, so relaxed/acquire/release
/// pairs are enough.
struct ThreadRing {
  std::vector<SpanEvent> slots{std::vector<SpanEvent>(Tracer::kRingCapacity)};
  std::atomic<std::uint64_t> head{0};
  std::atomic<std::uint64_t> tail{0};
  std::atomic<std::uint64_t> dropped{0};

  void push(const char* name, double begin_s, double end_s) {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    if (h - tail.load(std::memory_order_acquire) >= slots.size()) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    SpanEvent& e = slots[h % slots.size()];
    e.name = name;
    e.begin_s = begin_s;
    e.end_s = end_s;
    head.store(h + 1, std::memory_order_release);
  }

  std::size_t drain_into(std::vector<SpanEvent>& out) {
    const std::uint64_t h = head.load(std::memory_order_acquire);
    std::uint64_t t = tail.load(std::memory_order_relaxed);
    const std::size_t n = static_cast<std::size_t>(h - t);
    for (; t < h; ++t) out.push_back(slots[t % slots.size()]);
    tail.store(t, std::memory_order_release);
    return n;
  }
};

/// Rings are registered once per thread and retained for the life of the
/// process (the global list holds a shared_ptr), so events buffered by a
/// thread that has since exited are still drained losslessly. Thread counts
/// here are small and bounded (workers + reactor + main), so the list never
/// grows meaningfully.
struct RingDirectory {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadRing>> rings;
};

RingDirectory& directory() {
  static RingDirectory dir;
  return dir;
}

ThreadRing& this_thread_ring() {
  thread_local std::shared_ptr<ThreadRing> ring = [] {
    auto r = std::make_shared<ThreadRing>();
    RingDirectory& dir = directory();
    std::lock_guard<std::mutex> lock(dir.mutex);
    dir.rings.push_back(r);
    return r;
  }();
  return *ring;
}

}  // namespace

void Tracer::record(const char* name, double begin_s, double end_s) {
  this_thread_ring().push(name, begin_s, end_s);
}

std::size_t Tracer::drain(std::vector<SpanEvent>& out) {
  RingDirectory& dir = directory();
  std::lock_guard<std::mutex> lock(dir.mutex);
  std::size_t total = 0;
  for (const auto& ring : dir.rings) total += ring->drain_into(out);
  return total;
}

std::uint64_t Tracer::dropped() {
  RingDirectory& dir = directory();
  std::lock_guard<std::mutex> lock(dir.mutex);
  std::uint64_t total = 0;
  for (const auto& ring : dir.rings) total += ring->dropped.load(std::memory_order_relaxed);
  return total;
}

void Tracer::reset() {
  set_enabled(false);
  RingDirectory& dir = directory();
  std::lock_guard<std::mutex> lock(dir.mutex);
  for (const auto& ring : dir.rings) {
    ring->tail.store(ring->head.load(std::memory_order_acquire), std::memory_order_release);
    ring->dropped.store(0, std::memory_order_relaxed);
  }
}

}  // namespace fs2::trace
