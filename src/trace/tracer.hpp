#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fs2::trace {

/// Steady-clock seconds since the process clock epoch — the same time base
/// as cluster::local_clock_s(), duplicated here so the trace layer sits
/// BELOW telemetry and cluster in the include graph (both instrument their
/// hot paths with TRACE_SPAN).
inline double now_s() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One closed span recorded on the hot path. `name` must be a string with
/// static storage duration (TRACE_SPAN passes literals) — the ring stores
/// the pointer, never copies the text, so recording is a couple of stores.
struct SpanEvent {
  const char* name = nullptr;
  double begin_s = 0.0;  ///< local steady-clock seconds (trace::now_s)
  double end_s = 0.0;
};

/// Process-wide low-overhead span tracer.
///
/// Each thread owns a fixed-capacity SPSC ring of SpanEvents; record() is the
/// producer (two value stores plus a release publish), drain() is the single
/// consumer that walks every thread's ring off the hot path. When a ring is
/// full the producer drops the NEW event and counts it — overwriting the
/// oldest would race the drainer — so a drained trace is lossless up to an
/// explicit, queryable drop count.
///
/// Disabled cost (the common case) is one relaxed atomic load and a branch
/// per site; bench/micro_trace.cpp measures both paths and
/// bench/macro_cluster.cpp turns the measurement into the <1% ingest
/// overhead gate.
class Tracer {
 public:
  /// Spans per thread ring. At fleet scale the drainer runs at least once
  /// per phase; 16k spans cover >1s of the densest instrumented loop.
  static constexpr std::size_t kRingCapacity = 16384;

  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }
  static void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Record a closed span on the calling thread's ring. Callers check
  /// enabled() first (TRACE_SPAN does); record() itself does not.
  static void record(const char* name, double begin_s, double end_s);

  /// Drain every thread's ring (including rings of exited threads) into
  /// `out`, oldest-first per thread. Safe to call concurrently with
  /// producers; must not be called from two threads at once.
  static std::size_t drain(std::vector<SpanEvent>& out);

  /// Events dropped on full rings since the last reset().
  static std::uint64_t dropped();

  /// Discard all buffered events, drop counts, and the enabled flag.
  /// Test/benchmark hook; not thread-safe against live producers.
  static void reset();

 private:
  static std::atomic<bool> enabled_;
};

/// RAII span: stamps begin on construction, records on destruction. When
/// tracing is disabled at construction the destructor does nothing — a
/// span cannot straddle an enable flip.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name)
      : name_(Tracer::enabled() ? name : nullptr), begin_s_(name_ ? now_s() : 0.0) {}
  ~ScopedSpan() {
    if (name_ != nullptr) Tracer::record(name_, begin_s_, now_s());
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  double begin_s_;
};

#define FS2_TRACE_CONCAT2(a, b) a##b
#define FS2_TRACE_CONCAT(a, b) FS2_TRACE_CONCAT2(a, b)

/// Instrument the enclosing scope: TRACE_SPAN("cluster.phase_barrier").
/// `name` must be a string literal (or otherwise outlive the process).
#define TRACE_SPAN(name) ::fs2::trace::ScopedSpan FS2_TRACE_CONCAT(trace_span_, __LINE__)(name)

}  // namespace fs2::trace
