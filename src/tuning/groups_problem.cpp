#include "tuning/groups_problem.hpp"

#include "payload/access.hpp"
#include "util/error.hpp"

namespace fs2::tuning {

using payload::AccessKind;
using payload::all_access_kinds;
using payload::MemoryLevel;

namespace {

/// Search-space bounds per memory level: register and L1 groups dominate a
/// good M (Sec. III's examples), deeper levels contribute a thin tail —
/// and hundreds of RAM accesses per pass would only stall the machine.
std::uint32_t level_limit(MemoryLevel level) {
  switch (level) {
    case MemoryLevel::kReg: return 100;
    case MemoryLevel::kL1: return 100;
    case MemoryLevel::kL2: return 40;
    case MemoryLevel::kL3: return 20;
    case MemoryLevel::kRam: return 12;
  }
  return 1;
}

}  // namespace

GroupsProblem::GroupsProblem(EvaluationBackend& backend) : backend_(backend) {
  for (const AccessKind& kind : all_access_kinds()) gene_limits_.push_back(level_limit(kind.level));
}

std::size_t GroupsProblem::genome_length() const { return gene_limits_.size(); }

std::uint32_t GroupsProblem::gene_max(std::size_t i) const { return gene_limits_.at(i); }

std::vector<double> GroupsProblem::evaluate(const Genome& genome) {
  return backend_.evaluate(to_groups(genome));
}

payload::InstructionGroups GroupsProblem::to_groups(const Genome& genome) {
  const auto& kinds = all_access_kinds();
  if (genome.size() != kinds.size())
    throw Error("GroupsProblem::to_groups: genome length mismatch");
  std::vector<payload::Group> groups;
  for (std::size_t i = 0; i < kinds.size(); ++i)
    if (genome[i] > 0) groups.push_back(payload::Group{kinds[i], genome[i]});
  if (groups.empty()) groups.push_back(payload::Group{kinds[0], 1});  // repaired REG:1
  return payload::InstructionGroups(std::move(groups));
}

Genome GroupsProblem::from_groups(const payload::InstructionGroups& groups) {
  const auto& kinds = all_access_kinds();
  Genome genome(kinds.size(), 0);
  for (std::size_t i = 0; i < kinds.size(); ++i) genome[i] = groups.count_of(kinds[i]);
  return genome;
}

}  // namespace fs2::tuning
