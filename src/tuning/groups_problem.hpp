#pragma once

#include <functional>
#include <string>
#include <vector>

#include "payload/groups.hpp"
#include "tuning/problem.hpp"

namespace fs2::tuning {

/// Evaluates one candidate M by actually stressing the system (real or
/// simulated) and reading the optimization metrics (Sec. III-C). The
/// duration per candidate (-t) and the metric choice
/// (--optimization-metric) live inside the backend.
class EvaluationBackend {
 public:
  virtual ~EvaluationBackend() = default;
  virtual std::vector<std::string> objective_names() const = 0;
  virtual std::vector<double> evaluate(const payload::InstructionGroups& groups) = 0;
};

/// The FIRESTARTER tuning problem: genome = occurrence count per valid
/// access kind (canonical order of payload::all_access_kinds()); zero means
/// the kind is absent. The instruction set I is explicitly NOT part of the
/// genome (Sec. III-B: poorly chosen instructions risk trivial operands).
class GroupsProblem : public Problem {
 public:
  explicit GroupsProblem(EvaluationBackend& backend);

  std::size_t genome_length() const override;
  std::uint32_t gene_max(std::size_t i) const override;
  std::size_t num_objectives() const override { return backend_.objective_names().size(); }
  std::string objective_name(std::size_t i) const override {
    return backend_.objective_names().at(i);
  }
  std::vector<double> evaluate(const Genome& genome) override;

  /// Genome <-> grammar conversions (also used to print results).
  static payload::InstructionGroups to_groups(const Genome& genome);
  static Genome from_groups(const payload::InstructionGroups& groups);

 private:
  EvaluationBackend& backend_;
  std::vector<std::uint32_t> gene_limits_;
};

}  // namespace fs2::tuning
