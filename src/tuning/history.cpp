#include "tuning/history.hpp"

#include "util/csv.hpp"
#include "util/strings.hpp"

namespace fs2::tuning {

void History::record(std::size_t generation, const Genome& genome,
                     const std::vector<double>& objectives) {
  Evaluation evaluation;
  evaluation.order = evaluations_.size();
  evaluation.generation = generation;
  evaluation.genome = genome;
  evaluation.objectives = objectives;
  evaluations_.push_back(std::move(evaluation));
}

void History::write_csv(std::ostream& out,
                        const std::vector<std::string>& objective_names) const {
  CsvWriter csv(out);
  std::vector<std::string> header = {"order", "generation"};
  header.insert(header.end(), objective_names.begin(), objective_names.end());
  header.push_back("genome");
  csv.row(header);
  for (const Evaluation& e : evaluations_) {
    std::vector<std::string> row = {std::to_string(e.order), std::to_string(e.generation)};
    for (double value : e.objectives) row.push_back(strings::format("%.4f", value));
    std::string genome_text;
    for (std::size_t i = 0; i < e.genome.size(); ++i) {
      if (i != 0) genome_text += ' ';
      genome_text += std::to_string(e.genome[i]);
    }
    row.push_back(genome_text);
    csv.row(row);
  }
}

}  // namespace fs2::tuning
