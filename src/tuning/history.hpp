#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "tuning/individual.hpp"

namespace fs2::tuning {

/// One log entry: an evaluation that happened during the optimization.
/// Fig. 11 is a scatter of exactly this log (evaluation order encoded as
/// colour); Sec. IV-E: "A logfile is saved for further evaluation."
struct Evaluation {
  std::size_t order = 0;       ///< global evaluation index (colour axis)
  std::size_t generation = 0;  ///< 0 = initial population
  Genome genome;
  std::vector<double> objectives;
};

/// Append-only log of every evaluated individual.
class History {
 public:
  void record(std::size_t generation, const Genome& genome,
              const std::vector<double>& objectives);

  const std::vector<Evaluation>& evaluations() const { return evaluations_; }
  std::size_t size() const { return evaluations_.size(); }

  /// CSV export: order,generation,<objective columns>,genome.
  void write_csv(std::ostream& out, const std::vector<std::string>& objective_names) const;

 private:
  std::vector<Evaluation> evaluations_;
};

}  // namespace fs2::tuning
