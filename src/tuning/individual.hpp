#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace fs2::tuning {

/// Integer genome: one gene per valid access kind (the occurrence count a_i
/// of Eq. 1; zero means the kind is absent from M).
using Genome = std::vector<std::uint32_t>;

/// One evaluated candidate workload. All objectives are maximized.
struct Individual {
  Genome genome;
  std::vector<double> objectives;

  // NSGA-II bookkeeping (filled by the sorter).
  int rank = -1;                 ///< 0 = first (non-dominated) front
  double crowding = 0.0;         ///< crowding distance within its front

  bool evaluated() const { return !objectives.empty(); }
};

/// Pareto dominance for maximization: `a` dominates `b` iff a is >= in all
/// objectives and strictly greater in at least one.
bool dominates(const std::vector<double>& a, const std::vector<double>& b);

/// Crowded-comparison operator (Deb et al. 2002): lower rank wins; equal
/// rank prefers the larger crowding distance.
inline bool crowded_less(const Individual& a, const Individual& b) {
  if (a.rank != b.rank) return a.rank < b.rank;
  return a.crowding > b.crowding;
}

}  // namespace fs2::tuning
