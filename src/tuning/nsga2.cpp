#include "tuning/nsga2.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace fs2::tuning {

bool dominates(const std::vector<double>& a, const std::vector<double>& b) {
  bool strictly_better = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) return false;
    if (a[i] > b[i]) strictly_better = true;
  }
  return strictly_better;
}

void Problem::repair(Genome& genome) const {
  for (std::uint32_t gene : genome)
    if (gene != 0) return;
  if (!genome.empty()) genome[0] = 1;
}

std::vector<std::vector<std::size_t>> fast_non_dominated_sort(std::vector<Individual>& pop) {
  const std::size_t n = pop.size();
  std::vector<std::vector<std::size_t>> dominated(n);  // S_p
  std::vector<int> domination_count(n, 0);             // n_p
  std::vector<std::vector<std::size_t>> fronts(1);

  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = 0; q < n; ++q) {
      if (p == q) continue;
      if (dominates(pop[p].objectives, pop[q].objectives)) {
        dominated[p].push_back(q);
      } else if (dominates(pop[q].objectives, pop[p].objectives)) {
        ++domination_count[p];
      }
    }
    if (domination_count[p] == 0) {
      pop[p].rank = 0;
      fronts[0].push_back(p);
    }
  }

  std::size_t current = 0;
  while (!fronts[current].empty()) {
    std::vector<std::size_t> next;
    for (std::size_t p : fronts[current]) {
      for (std::size_t q : dominated[p]) {
        if (--domination_count[q] == 0) {
          pop[q].rank = static_cast<int>(current) + 1;
          next.push_back(q);
        }
      }
    }
    ++current;
    fronts.push_back(std::move(next));
  }
  fronts.pop_back();  // the last front is always empty
  return fronts;
}

void assign_crowding_distance(std::vector<Individual>& pop,
                              const std::vector<std::size_t>& front) {
  if (front.empty()) return;
  for (std::size_t i : front) pop[i].crowding = 0.0;
  const std::size_t objectives = pop[front[0]].objectives.size();
  for (std::size_t m = 0; m < objectives; ++m) {
    std::vector<std::size_t> order(front);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return pop[a].objectives[m] < pop[b].objectives[m];
    });
    const double lo = pop[order.front()].objectives[m];
    const double hi = pop[order.back()].objectives[m];
    pop[order.front()].crowding = std::numeric_limits<double>::infinity();
    pop[order.back()].crowding = std::numeric_limits<double>::infinity();
    if (hi <= lo) continue;  // degenerate objective: all equal
    for (std::size_t k = 1; k + 1 < order.size(); ++k)
      pop[order[k]].crowding +=
          (pop[order[k + 1]].objectives[m] - pop[order[k - 1]].objectives[m]) / (hi - lo);
  }
}

namespace {

Genome random_genome(const Problem& problem, Xoshiro256& rng) {
  Genome genome(problem.genome_length());
  for (std::size_t i = 0; i < genome.size(); ++i)
    genome[i] = static_cast<std::uint32_t>(rng.below(problem.gene_max(i) + 1));
  return genome;
}

void mutate(Genome& genome, const Problem& problem, Xoshiro256& rng) {
  // Each gene flips with probability 1/length; half the flips are local
  // steps (fine-tuning a ratio), half are random resets (escaping local
  // optima without a sharing parameter).
  const double per_gene = 1.0 / static_cast<double>(genome.size());
  for (std::size_t i = 0; i < genome.size(); ++i) {
    if (!rng.chance(per_gene)) continue;
    const auto max = static_cast<std::int64_t>(problem.gene_max(i));
    if (rng.chance(0.5)) {
      const std::int64_t step = rng.range(1, 3) * (rng.chance(0.5) ? 1 : -1);
      genome[i] = static_cast<std::uint32_t>(
          std::clamp<std::int64_t>(static_cast<std::int64_t>(genome[i]) + step, 0, max));
    } else {
      genome[i] = static_cast<std::uint32_t>(rng.below(static_cast<std::uint64_t>(max) + 1));
    }
  }
}

const Individual& tournament(const std::vector<Individual>& pop, Xoshiro256& rng) {
  const Individual& a = pop[rng.below(pop.size())];
  const Individual& b = pop[rng.below(pop.size())];
  return crowded_less(a, b) ? a : b;
}

}  // namespace

std::vector<Individual> Nsga2::run(Problem& problem, History* history) {
  if (config_.individuals < 2) throw Error("Nsga2: population must hold at least 2 individuals");
  if (problem.genome_length() == 0) throw Error("Nsga2: empty genome");
  Xoshiro256 rng(config_.seed);

  auto evaluate = [&](Individual& ind, std::size_t generation) {
    problem.repair(ind.genome);
    ind.objectives = problem.evaluate(ind.genome);
    if (history != nullptr) history->record(generation, ind.genome, ind.objectives);
  };

  // Initial population (generation 0).
  std::vector<Individual> population(config_.individuals);
  for (Individual& ind : population) {
    ind.genome = random_genome(problem, rng);
    evaluate(ind, 0);
  }
  {
    auto fronts = fast_non_dominated_sort(population);
    for (const auto& front : fronts) assign_crowding_distance(population, front);
  }

  for (std::size_t gen = 1; gen <= config_.generations; ++gen) {
    // Variation: binary tournament -> uniform crossover -> mutation.
    std::vector<Individual> offspring;
    offspring.reserve(config_.individuals);
    while (offspring.size() < config_.individuals) {
      Genome child = tournament(population, rng).genome;
      if (rng.chance(config_.crossover_probability)) {
        const Genome& other = tournament(population, rng).genome;
        for (std::size_t i = 0; i < child.size(); ++i)
          if (rng.chance(0.5)) child[i] = other[i];
      }
      if (rng.chance(config_.mutation_probability)) mutate(child, problem, rng);
      Individual ind;
      ind.genome = std::move(child);
      evaluate(ind, gen);
      offspring.push_back(std::move(ind));
    }

    // (mu + lambda) elitist survival: sort the union, keep the best fronts,
    // truncate the split front by crowding distance.
    std::vector<Individual> combined = std::move(population);
    combined.insert(combined.end(), std::make_move_iterator(offspring.begin()),
                    std::make_move_iterator(offspring.end()));
    auto fronts = fast_non_dominated_sort(combined);
    for (const auto& front : fronts) assign_crowding_distance(combined, front);

    population.clear();
    for (const auto& front : fronts) {
      if (population.size() + front.size() <= config_.individuals) {
        for (std::size_t idx : front) population.push_back(std::move(combined[idx]));
      } else {
        std::vector<std::size_t> sorted(front);
        std::sort(sorted.begin(), sorted.end(), [&](std::size_t a, std::size_t b) {
          return combined[a].crowding > combined[b].crowding;
        });
        for (std::size_t idx : sorted) {
          if (population.size() >= config_.individuals) break;
          population.push_back(std::move(combined[idx]));
        }
      }
      if (population.size() >= config_.individuals) break;
    }
  }

  std::sort(population.begin(), population.end(),
            [](const Individual& a, const Individual& b) { return crowded_less(a, b); });
  return population;
}

const Individual& Nsga2::best_by_objective(const std::vector<Individual>& population,
                                           std::size_t objective) {
  if (population.empty()) throw Error("Nsga2::best_by_objective: empty population");
  const Individual* best = &population.front();
  for (const Individual& ind : population) {
    if (ind.rank != 0) continue;
    if (best->rank != 0 || ind.objectives.at(objective) > best->objectives.at(objective))
      best = &ind;
  }
  return *best;
}

}  // namespace fs2::tuning
