#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "tuning/history.hpp"
#include "tuning/individual.hpp"
#include "tuning/problem.hpp"

namespace fs2::tuning {

/// Configuration mirroring the paper's CLI (Sec. IV-E):
/// --individuals=40 --generations=20 --nsga2-m=0.35.
struct Nsga2Config {
  std::size_t individuals = 40;
  std::size_t generations = 20;
  double mutation_probability = 0.35;   ///< per-individual mutation chance
  double crossover_probability = 0.9;   ///< per-pair recombination chance
  std::uint64_t seed = 0xF12E57A27E2ULL;
};

/// Fast non-dominated sort (Deb et al. 2002, O(M N^2)): assigns `rank` to
/// every individual and returns the fronts as index lists, best first.
std::vector<std::vector<std::size_t>> fast_non_dominated_sort(std::vector<Individual>& pop);

/// Crowding-distance assignment within one front (indices into `pop`).
void assign_crowding_distance(std::vector<Individual>& pop,
                              const std::vector<std::size_t>& front);

/// NSGA-II driver. Deterministic for a fixed (config.seed, problem).
class Nsga2 {
 public:
  explicit Nsga2(Nsga2Config config) : config_(config) {}

  /// Run the optimization: random initial population, then
  /// binary-tournament selection, uniform crossover, and per-gene mutation
  /// for `generations` rounds with (mu+lambda) elitist survival. Every
  /// evaluation is appended to `history` when non-null. Returns the final
  /// population sorted by crowded comparison (best first).
  std::vector<Individual> run(Problem& problem, History* history = nullptr);

  /// Pick the front member with the highest value in `objective` — the
  /// "selected optimum" of Fig. 11 (the tool's goal is power, objective 0).
  static const Individual& best_by_objective(const std::vector<Individual>& population,
                                             std::size_t objective);

 private:
  Nsga2Config config_;
};

}  // namespace fs2::tuning
