#include "tuning/pareto.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fs2::tuning {

std::vector<std::size_t> pareto_front(const std::vector<std::vector<double>>& points) {
  std::vector<std::size_t> front;
  for (std::size_t p = 0; p < points.size(); ++p) {
    bool is_dominated = false;
    for (std::size_t q = 0; q < points.size() && !is_dominated; ++q)
      if (p != q && dominates(points[q], points[p])) is_dominated = true;
    if (!is_dominated) front.push_back(p);
  }
  return front;
}

double hypervolume_2d(const std::vector<std::vector<double>>& front,
                      const std::vector<double>& reference) {
  if (reference.size() != 2) throw Error("hypervolume_2d: reference must be 2-D");
  if (front.empty()) return 0.0;
  for (const auto& point : front) {
    if (point.size() != 2) throw Error("hypervolume_2d: front points must be 2-D");
    if (point[0] < reference[0] || point[1] < reference[1])
      throw Error("hypervolume_2d: front point does not dominate the reference");
  }
  // Sort by first objective descending; sweep adds disjoint rectangles.
  std::vector<std::vector<double>> sorted(front);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a[0] > b[0]; });
  double volume = 0.0;
  double prev_y = reference[1];
  for (const auto& point : sorted) {
    if (point[1] > prev_y) {
      volume += (point[0] - reference[0]) * (point[1] - prev_y);
      prev_y = point[1];
    }
  }
  return volume;
}

}  // namespace fs2::tuning
