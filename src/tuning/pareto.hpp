#pragma once

#include <vector>

#include "tuning/individual.hpp"

namespace fs2::tuning {

/// Extract the non-dominated subset of a set of objective vectors
/// (maximization). Returns indices into `points`, in input order.
std::vector<std::size_t> pareto_front(const std::vector<std::vector<double>>& points);

/// 2-D hypervolume indicator (maximization) with respect to a reference
/// point that every front member must dominate. Used to quantify optimizer
/// convergence (Fig. 11: later individuals shrink the gap to the front).
double hypervolume_2d(const std::vector<std::vector<double>>& front,
                      const std::vector<double>& reference);

}  // namespace fs2::tuning
