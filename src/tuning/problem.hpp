#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tuning/individual.hpp"

namespace fs2::tuning {

/// A multi-objective maximization problem over integer genomes.
/// FIRESTARTER's concrete problem (tune M for power and IPC) is
/// GroupsProblem; the interface stays generic so the optimizer can be
/// property-tested on analytic functions.
class Problem {
 public:
  virtual ~Problem() = default;

  virtual std::size_t genome_length() const = 0;

  /// Inclusive upper bound of gene `i` (genes are in [0, gene_max(i)]).
  virtual std::uint32_t gene_max(std::size_t i) const = 0;

  virtual std::size_t num_objectives() const = 0;
  virtual std::string objective_name(std::size_t i) const = 0;

  /// Evaluate a genome. Called once per candidate per generation; expensive
  /// (10 s of stress time on real hardware, instantaneous on the
  /// simulator).
  virtual std::vector<double> evaluate(const Genome& genome) = 0;

  /// Repair an invalid genome in place (e.g. all-zero). Default: if every
  /// gene is zero, set the first to one.
  virtual void repair(Genome& genome) const;
};

}  // namespace fs2::tuning
