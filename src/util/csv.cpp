#include "util/csv.hpp"

#include <cstdio>

namespace fs2 {

std::string CsvWriter::escape(const std::string& field, char sep) {
  const bool needs_quotes = field.find_first_of(std::string("\"\n") + sep) != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  bool first = true;
  for (const auto& field : fields) {
    if (!first) out_ << sep_;
    out_ << escape(field, sep_);
    first = false;
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<double>& values, int precision) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  char buf[64];
  for (double v : values) {
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    fields.emplace_back(buf);
  }
  row(fields);
}

}  // namespace fs2
