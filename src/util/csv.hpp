#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace fs2 {

/// Minimal CSV writer used for metric exports (--measurement prints CSV per
/// the paper, Sec. III-D) and experiment logs. Fields containing the
/// separator, quotes, or newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out, char sep = ',') : out_(out), sep_(sep) {}

  /// Write one row; each field is escaped as needed.
  void row(const std::vector<std::string>& fields);

  /// Convenience: write a row of doubles with fixed precision.
  void row(const std::vector<double>& values, int precision = 6);

  static std::string escape(const std::string& field, char sep);

 private:
  std::ostream& out_;
  char sep_;
};

}  // namespace fs2
