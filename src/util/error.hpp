#pragma once

#include <stdexcept>
#include <string>

namespace fs2 {

/// Base exception for all errors raised by the fs2 library.
///
/// Every module throws `Error` (or a subclass) so that callers can catch a
/// single type at the API boundary. The message is always a complete,
/// human-readable sentence including the failing component.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& message) : std::runtime_error(message) {}
};

/// Raised when user-provided configuration (CLI flags, instruction-group
/// strings, machine descriptions) cannot be parsed or is semantically
/// invalid.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& message) : Error(message) {}
};

/// Raised when the host system lacks a capability (ISA extension, sysfs
/// interface, perf_event access) that a component requires. Callers are
/// expected to catch this and fall back where a fallback exists.
class UnsupportedError : public Error {
 public:
  explicit UnsupportedError(const std::string& message) : Error(message) {}
};

}  // namespace fs2
