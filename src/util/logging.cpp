#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <ctime>

#include "util/error.hpp"

namespace fs2::log {

namespace {
std::atomic<Level> g_level{Level::kInfo};
std::mutex g_emit_mutex;

const char* level_name(Level level) {
  switch (level) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo:  return "INFO ";
    case Level::kWarn:  return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff:   return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

Level parse_level(const std::string& name) {
  if (name == "trace") return Level::kTrace;
  if (name == "debug") return Level::kDebug;
  if (name == "info") return Level::kInfo;
  if (name == "warn") return Level::kWarn;
  if (name == "error") return Level::kError;
  if (name == "off") return Level::kOff;
  throw ConfigError("unknown log level: '" + name + "'");
}

namespace detail {

bool enabled(Level level) { return level >= g_level.load(std::memory_order_relaxed); }

void emit(Level level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[fs2 %s] %s\n", level_name(level), message.c_str());
}

}  // namespace detail
}  // namespace fs2::log
