#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace fs2::log {

/// Severity levels, ordered. Messages below the global threshold are
/// discarded without formatting cost beyond stream construction.
enum class Level { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Set the global log threshold. Thread-safe.
void set_level(Level level);

/// Current global log threshold.
Level level();

/// Parse a level name ("trace", "debug", "info", "warn", "error", "off").
/// Throws fs2::ConfigError on unknown names.
Level parse_level(const std::string& name);

namespace detail {
void emit(Level level, const std::string& message);
bool enabled(Level level);

/// RAII message builder: collects stream output and emits on destruction.
class LineLogger {
 public:
  explicit LineLogger(Level level) : level_(level) {}
  LineLogger(const LineLogger&) = delete;
  LineLogger& operator=(const LineLogger&) = delete;
  ~LineLogger() {
    if (enabled(level_)) emit(level_, stream_.str());
  }

  template <typename T>
  LineLogger& operator<<(const T& value) {
    if (enabled(level_)) stream_ << value;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LineLogger trace() { return detail::LineLogger(Level::kTrace); }
inline detail::LineLogger debug() { return detail::LineLogger(Level::kDebug); }
inline detail::LineLogger info() { return detail::LineLogger(Level::kInfo); }
inline detail::LineLogger warn() { return detail::LineLogger(Level::kWarn); }
inline detail::LineLogger error() { return detail::LineLogger(Level::kError); }

/// Structured `key=value` suffix for lifecycle log lines — greppable by
/// key, quoted only when the value contains whitespace. Values stream
/// through ostringstream, so anything printable works:
///   log::info() << "cluster: node lost " << log::kv("node", name)
///               << ' ' << log::kv("phase", idx);
template <typename T>
std::string kv(const std::string& key, const T& value) {
  std::ostringstream os;
  os << value;
  const std::string text = os.str();
  const bool quote = text.find_first_of(" \t") != std::string::npos || text.empty();
  return quote ? key + "=\"" + text + "\"" : key + "=" + text;
}

}  // namespace fs2::log
