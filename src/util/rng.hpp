#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace fs2 {

/// splitmix64 — used to seed Xoshiro256** from a single 64-bit value.
/// Reference: Sebastiano Vigna, public domain.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Xoshiro256** — fast, high-quality 64-bit PRNG. Deterministic across
/// platforms, which matters because every experiment in this repository must
/// be exactly reproducible from a seed. Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x5eed5eed5eed5eedULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<std::uint64_t>::max(); }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, bound). Uses rejection-free Lemire reduction;
  /// the modulo bias is negligible for the bounds used in this project but
  /// we keep the multiply-shift scheme for uniformity anyway.
  std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) return 0;
    const unsigned __int128 product =
        static_cast<unsigned __int128>((*this)()) * static_cast<unsigned __int128>(bound);
    return static_cast<std::uint64_t>(product >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

  /// Standard normal via Box–Muller (cached second value not kept — callers
  /// in this project draw rarely enough that simplicity wins).
  double normal() {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * kPi * u2);
  }

 private:
  static constexpr double kPi = 3.14159265358979323846;
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t state_[4];
};

}  // namespace fs2
