#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace fs2::stats {

namespace {
void require_nonempty(std::span<const double> values, const char* what) {
  if (values.empty()) throw Error(std::string("stats::") + what + " called on empty sample");
}
}  // namespace

double sum(std::span<const double> values) {
  // Kahan summation: power traces hold ~10^5 similar-magnitude samples and a
  // naive sum loses enough precision to move 0.1 W bins.
  double total = 0.0;
  double carry = 0.0;
  for (double v : values) {
    const double y = v - carry;
    const double t = total + y;
    carry = (t - total) - y;
    total = t;
  }
  return total;
}

double mean(std::span<const double> values) {
  require_nonempty(values, "mean");
  return sum(values) / static_cast<double>(values.size());
}

double variance(std::span<const double> values) {
  require_nonempty(values, "variance");
  const double m = mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return acc / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) { return std::sqrt(variance(values)); }

double min(std::span<const double> values) {
  require_nonempty(values, "min");
  return *std::min_element(values.begin(), values.end());
}

double max(std::span<const double> values) {
  require_nonempty(values, "max");
  return *std::max_element(values.begin(), values.end());
}

double percentile(std::span<const double> values, double p) {
  require_nonempty(values, "percentile");
  if (p < 0.0 || p > 100.0) throw Error("stats::percentile: p out of [0,100]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::vector<CdfPoint> cumulative_distribution(std::span<const double> values, double bin_width) {
  require_nonempty(values, "cumulative_distribution");
  if (bin_width <= 0.0) throw Error("stats::cumulative_distribution: bin_width must be > 0");
  const double top = max(values);
  const auto bins = static_cast<std::size_t>(std::ceil(top / bin_width)) + 1;
  std::vector<std::size_t> counts(bins, 0);
  for (double v : values) {
    auto idx = static_cast<std::size_t>(std::max(v, 0.0) / bin_width);
    idx = std::min(idx, bins - 1);
    ++counts[idx];
  }
  std::vector<CdfPoint> cdf(bins);
  std::size_t running = 0;
  for (std::size_t i = 0; i < bins; ++i) {
    running += counts[i];
    cdf[i].bin_upper = bin_width * static_cast<double>(i + 1);
    cdf[i].proportion = static_cast<double>(running) / static_cast<double>(values.size());
  }
  return cdf;
}

void Accumulator::add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double Accumulator::mean() const {
  if (count_ == 0) throw Error("stats::Accumulator::mean on empty accumulator");
  return mean_;
}

double Accumulator::variance() const {
  if (count_ == 0) throw Error("stats::Accumulator::variance on empty accumulator");
  return m2_ / static_cast<double>(count_);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const {
  if (count_ == 0) throw Error("stats::Accumulator::min on empty accumulator");
  return min_;
}

double Accumulator::max() const {
  if (count_ == 0) throw Error("stats::Accumulator::max on empty accumulator");
  return max_;
}

}  // namespace fs2::stats
