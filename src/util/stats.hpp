#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fs2 {

/// Summary statistics over a sample. All functions take a span of doubles;
/// empty input is a caller error and throws fs2::Error, because a silent
/// NaN would propagate into experiment tables unnoticed.
namespace stats {

double mean(std::span<const double> values);
double variance(std::span<const double> values);  ///< population variance
double stddev(std::span<const double> values);
double min(std::span<const double> values);
double max(std::span<const double> values);
double sum(std::span<const double> values);

/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::span<const double> values, double p);
inline double median(std::span<const double> values) { return percentile(values, 50.0); }

/// Cumulative distribution over fixed-width bins, mirroring Fig. 1 of the
/// paper (power binned into 0.1 W bins, proportion on the y-axis).
struct CdfPoint {
  double bin_upper;   ///< upper edge of the bin
  double proportion;  ///< fraction of samples <= bin_upper
};

/// Bin `values` into `bin_width`-wide bins spanning [0, max] and return the
/// cumulative proportion per bin. `bin_width` must be positive.
std::vector<CdfPoint> cumulative_distribution(std::span<const double> values, double bin_width);

/// Online mean/variance accumulator (Welford). Used by measurement windows
/// where samples stream in at up to 20 Sa/s for minutes.
class Accumulator {
 public:
  void add(double value);
  std::size_t count() const { return count_; }
  double mean() const;
  double variance() const;  ///< population variance
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace stats
}  // namespace fs2
