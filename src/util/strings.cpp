#include "util/strings.hpp"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace fs2::strings {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(text.substr(start));
      return fields;
    }
    fields.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string to_upper(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::uint64_t parse_u64(std::string_view text, std::string_view context) {
  const std::string_view trimmed = trim(text);
  if (trimmed.empty()) throw ConfigError(std::string(context) + ": empty integer");
  std::uint64_t value = 0;
  for (char c : trimmed) {
    if (c < '0' || c > '9')
      throw ConfigError(std::string(context) + ": '" + std::string(trimmed) +
                        "' is not a non-negative integer");
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10)
      throw ConfigError(std::string(context) + ": integer overflow in '" + std::string(trimmed) + "'");
    value = value * 10 + digit;
  }
  return value;
}

double parse_double(std::string_view text, std::string_view context) {
  const std::string buf(trim(text));
  if (buf.empty()) throw ConfigError(std::string(context) + ": empty number");
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size())
    throw ConfigError(std::string(context) + ": '" + buf + "' is not a number");
  return value;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<std::size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

}  // namespace fs2::strings
