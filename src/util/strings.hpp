#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fs2::strings {

/// Split `text` on `sep`, keeping empty fields. "a,,b" -> {"a", "", "b"}.
std::vector<std::string> split(std::string_view text, char sep);

/// Remove leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// ASCII lower-casing (locale-independent; config grammar is ASCII).
std::string to_lower(std::string_view text);
std::string to_upper(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);

/// Parse a non-negative integer; throws fs2::ConfigError with `context` in
/// the message on malformed input or overflow.
std::uint64_t parse_u64(std::string_view text, std::string_view context);

/// Parse a double; throws fs2::ConfigError on malformed input.
double parse_double(std::string_view text, std::string_view context);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace fs2::strings
