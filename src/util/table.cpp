#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

namespace fs2 {

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row(const std::string& label, const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  char buf[64];
  for (double v : values) {
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    cells.emplace_back(buf);
  }
  add_row(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << (c == 0 ? "" : "  ");
      out << cell;
      for (std::size_t pad = cell.size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << '\n';
  };

  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace fs2
