#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace fs2 {

/// Console table renderer used by the benchmark harnesses to print the
/// rows/series of each paper table and figure in a stable, diffable format.
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells);

  /// Convenience overload for numeric rows.
  void add_row(const std::string& label, const std::vector<double>& values, int precision = 1);

  /// Render with aligned columns and a header separator.
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fs2
