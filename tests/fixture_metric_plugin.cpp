// Test fixture: a minimal external metric plugin implementing the C ABI of
// metrics/external.hpp. Built as a shared library and loaded by
// test_metrics.cpp through the same dlopen path a real power-meter plugin
// (e.g. libmetric-metricq.so in the paper's Fig. 10) would use.

#include <atomic>

namespace {
std::atomic<int> g_reads{0};
std::atomic<bool> g_initialized{false};
}  // namespace

extern "C" {

const char* fs2_metric_name(void) { return "fixture-power"; }
const char* fs2_metric_unit(void) { return "W"; }

int fs2_metric_init(void) {
  g_initialized.store(true);
  g_reads.store(0);
  return 0;
}

double fs2_metric_read(void) {
  // Deterministic ramp so the test can assert successive values.
  return 100.0 + static_cast<double>(g_reads.fetch_add(1));
}

void fs2_metric_fini(void) { g_initialized.store(false); }

}  // extern "C"
