// Tests for src/arch: CPUID feature detection, microarchitecture
// classification, sysfs topology/cache parsing against fixture trees.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "arch/cache.hpp"
#include "arch/cpuid.hpp"
#include "arch/processor.hpp"
#include "arch/topology.hpp"

namespace fs2::arch {
namespace {

namespace fs = std::filesystem;

// ---- cpuid ---------------------------------------------------------------

TEST(Cpuid, HostIdentityIsConsistent) {
  const CpuIdentity& id = host_identity();
#if defined(__x86_64__)
  EXPECT_FALSE(id.vendor.empty());
  EXPECT_TRUE(id.features.sse2);  // baseline for any x86_64
#endif
  // Cached: second call returns the same object.
  EXPECT_EQ(&host_identity(), &id);
}

TEST(Cpuid, FeatureSetCovers) {
  FeatureSet host{.sse2 = true, .avx = true, .fma = true, .avx2 = true, .avx512f = false};
  EXPECT_TRUE(host.covers(FeatureSet{.sse2 = true}));
  EXPECT_TRUE(host.covers(FeatureSet{.sse2 = true, .avx = true, .fma = true}));
  EXPECT_FALSE(host.covers(FeatureSet{.avx512f = true}));
  EXPECT_TRUE(FeatureSet{}.covers(FeatureSet{}));
}

TEST(Cpuid, FeatureSetToString) {
  EXPECT_EQ(FeatureSet{}.to_string(), "none");
  FeatureSet f{.sse2 = true, .fma = true};
  EXPECT_EQ(f.to_string(), "sse2 fma");
}

// ---- classification ----------------------------------------------------------

TEST(Processor, ClassifiesPaperTestbeds) {
  // Table II: AMD EPYC 7502 is family 0x17 model 0x31 (Rome).
  EXPECT_EQ(classify("AuthenticAMD", 0x17, 0x31), Microarch::kAmdZen2);
  // Fig. 2: Xeon E5-2680 v3 is family 6 model 0x3f (Haswell-EP).
  EXPECT_EQ(classify("GenuineIntel", 6, 0x3f), Microarch::kIntelHaswell);
}

TEST(Processor, ClassifiesZenGenerations) {
  EXPECT_EQ(classify("AuthenticAMD", 0x17, 0x01), Microarch::kAmdZen);
  EXPECT_EQ(classify("AuthenticAMD", 0x17, 0x71), Microarch::kAmdZen2);  // Matisse
  EXPECT_EQ(classify("AuthenticAMD", 0x15, 0x02), Microarch::kAmdBulldozer);
}

TEST(Processor, UnknownFallsBackToGeneric) {
  EXPECT_EQ(classify("GenuineIntel", 6, 0xff), Microarch::kGeneric);
  EXPECT_EQ(classify("SomethingElse", 1, 1), Microarch::kGeneric);
}

TEST(Processor, PaperModelsDescribe) {
  const ProcessorModel zen2 = epyc_7502_model();
  EXPECT_EQ(zen2.microarch, Microarch::kAmdZen2);
  EXPECT_TRUE(zen2.features.fma);
  EXPECT_FALSE(zen2.features.avx512f);
  EXPECT_NE(zen2.describe().find("EPYC 7502"), std::string::npos);

  const ProcessorModel haswell = xeon_e5_2680v3_model();
  EXPECT_EQ(haswell.microarch, Microarch::kIntelHaswell);
  EXPECT_TRUE(haswell.features.avx2);
}

TEST(Processor, DetectHostDoesNotThrow) {
  const ProcessorModel host = detect_host();
#if defined(__x86_64__)
  EXPECT_TRUE(host.features.sse2);
#endif
  EXPECT_FALSE(host.describe().empty());
}

// ---- topology fixtures ------------------------------------------------------------

class SysfsFixture : public testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() / ("fs2_sysfs_" + std::to_string(::getpid()) + "_" +
                                         testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  void add_cpu(int os_id, int core, int package) {
    const fs::path dir = root_ / "devices" / "system" / "cpu" / ("cpu" + std::to_string(os_id)) /
                         "topology";
    fs::create_directories(dir);
    write(dir / "core_id", std::to_string(core));
    write(dir / "physical_package_id", std::to_string(package));
  }

  void add_cache(int cpu, int index, int level, const std::string& type, const std::string& size,
                 const std::string& shared) {
    const fs::path dir = root_ / "devices" / "system" / "cpu" / ("cpu" + std::to_string(cpu)) /
                         "cache" / ("index" + std::to_string(index));
    fs::create_directories(dir);
    write(dir / "level", std::to_string(level));
    write(dir / "type", type);
    write(dir / "size", size);
    write(dir / "coherency_line_size", "64");
    write(dir / "shared_cpu_list", shared);
  }

  static void write(const fs::path& path, const std::string& content) {
    std::ofstream out(path);
    out << content << "\n";
  }

  fs::path root_;
};

TEST_F(SysfsFixture, ParsesTwoSocketSmtTopology) {
  // 2 packages x 2 cores x 2 SMT = 8 logical CPUs, Linux-style enumeration.
  int os_id = 0;
  for (int smt = 0; smt < 2; ++smt)
    for (int pkg = 0; pkg < 2; ++pkg)
      for (int core = 0; core < 2; ++core) add_cpu(os_id++, core, pkg);

  const Topology topo = Topology::from_sysfs(root_.string());
  EXPECT_EQ(topo.num_logical(), 8u);
  EXPECT_EQ(topo.num_cores(), 4u);
  EXPECT_EQ(topo.num_packages(), 2u);
  EXPECT_TRUE(topo.smt_enabled());
  EXPECT_EQ(topo.worker_cpus(false).size(), 8u);
  EXPECT_EQ(topo.worker_cpus(true).size(), 4u);
}

TEST_F(SysfsFixture, MissingTreeFallsBackToFlat) {
  const Topology topo = Topology::from_sysfs(root_.string());
  EXPECT_GE(topo.num_logical(), 1u);
  EXPECT_EQ(topo.num_logical(), topo.num_cores());
}

TEST(Topology, SyntheticMatchesTableII) {
  // Table II: 2x AMD EPYC 7502, 2x 32 cores, SMT on.
  const Topology topo = Topology::synthetic(2, 32, 2);
  EXPECT_EQ(topo.num_logical(), 128u);
  EXPECT_EQ(topo.num_cores(), 64u);
  EXPECT_EQ(topo.num_packages(), 2u);
  // SMT siblings are the second half of the OS id space.
  const auto physical = topo.worker_cpus(true);
  EXPECT_EQ(physical.size(), 64u);
  EXPECT_EQ(physical.front(), 0);
  EXPECT_EQ(physical.back(), 63);
}

TEST_F(SysfsFixture, ParsesCacheHierarchy) {
  add_cpu(0, 0, 0);
  add_cache(0, 0, 1, "Data", "32K", "0-1");
  add_cache(0, 1, 1, "Instruction", "32K", "0-1");
  add_cache(0, 2, 2, "Unified", "512K", "0-1");
  add_cache(0, 3, 3, "Unified", "16384K", "0-7");

  const CacheHierarchy caches = CacheHierarchy::from_sysfs(0, root_.string());
  EXPECT_EQ(caches.data_cache_size(1), 32u * 1024);
  EXPECT_EQ(caches.data_cache_size(2), 512u * 1024);
  EXPECT_EQ(caches.data_cache_size(3), 16u * 1024 * 1024);
  EXPECT_EQ(caches.l1i_size(), 32u * 1024);
  // Sharing parsed from the cpu list.
  bool found_l3 = false;
  for (const auto& level : caches.levels())
    if (level.level == 3) {
      EXPECT_EQ(level.sharing, 8);
      found_l3 = true;
    }
  EXPECT_TRUE(found_l3);
}

TEST(Cache, BuiltinHierarchiesMatchPaper) {
  const CacheHierarchy zen2 = CacheHierarchy::zen2();
  EXPECT_EQ(zen2.data_cache_size(1), 32u * 1024);     // Table II: 32 KiB L1-D
  EXPECT_EQ(zen2.data_cache_size(2), 512u * 1024);    // Table II: 512 KiB L2
  EXPECT_EQ(zen2.data_cache_size(3), 16u * 1024 * 1024);  // Table II: 16 MiB per CCX
  EXPECT_EQ(zen2.l1i_size(), 32u * 1024);

  const CacheHierarchy haswell = CacheHierarchy::haswell_ep();
  EXPECT_EQ(haswell.data_cache_size(2), 256u * 1024);
}

}  // namespace
}  // namespace fs2::arch
