// Tests for the Table I baseline workloads: LINPACK's LU solve with
// residual verification, the Lucas-Lehmer Mersenne test (Prime95's core),
// and stress-ng's matrixprod/sqrt methods.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/linpack.hpp"
#include "baselines/prime.hpp"
#include "baselines/stressng.hpp"
#include "util/error.hpp"

namespace fs2::baselines {
namespace {

// ---- LINPACK ---------------------------------------------------------------

class LinpackSizes : public testing::TestWithParam<std::size_t> {};

TEST_P(LinpackSizes, ResidualCheckPasses) {
  LinpackSolver solver(GetParam(), 42);
  const double check = solver.solve();
  // HPL convention: the normalized residual of a correct solve is O(1).
  EXPECT_LT(check, 16.0);
  EXPECT_GE(check, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LinpackSizes, testing::Values(1, 2, 17, 64, 100, 257));

TEST(Linpack, SolvesKnownSystemExactly) {
  // 1x1 system: (1+1) x = b -> x = b/2... construct via the class and check
  // A x = b holds by the residual instead of poking internals.
  EXPECT_LT(linpack_rep(8, 7), 16.0);
}

TEST(Linpack, SolutionActuallySatisfiesSystem) {
  LinpackSolver solver(50, 3);
  solver.solve();
  EXPECT_EQ(solver.solution().size(), 50u);
  for (double v : solver.solution()) EXPECT_TRUE(std::isfinite(v));
}

TEST(Linpack, FlopCountFollowsCubicLaw) {
  LinpackSolver small(100, 1), big(200, 1);
  EXPECT_NEAR(big.flops() / small.flops(), 8.0, 0.5);
}

TEST(Linpack, ZeroDimensionRejected) { EXPECT_THROW(LinpackSolver(0, 1), Error); }

TEST(Linpack, DeterministicPerSeed) {
  LinpackSolver a(32, 9), b(32, 9);
  a.solve();
  b.solve();
  EXPECT_EQ(a.solution(), b.solution());
}

// ---- Lucas-Lehmer (Prime95 core) ------------------------------------------------

TEST(LucasLehmer, KnownMersennePrimes) {
  // M_p is prime for p in {2,3,5,7,13,17,19,31,61,89,107,127} (the classic
  // list; GIMPS continues it).
  for (unsigned p : {3u, 5u, 7u, 13u, 17u, 19u, 31u, 61u, 89u, 107u, 127u})
    EXPECT_TRUE(LucasLehmer::is_mersenne_prime(p)) << "M_" << p;
}

TEST(LucasLehmer, KnownComposites) {
  // M_11 = 2047 = 23 x 89 is the classic counterexample; M_23, M_29, M_37
  // are composite too.
  for (unsigned p : {11u, 23u, 29u, 37u, 41u, 43u, 47u})
    EXPECT_FALSE(LucasLehmer::is_mersenne_prime(p)) << "M_" << p;
}

TEST(LucasLehmer, LargerExponents) {
  EXPECT_TRUE(LucasLehmer::is_mersenne_prime(521));   // M_521 (1952)
  EXPECT_FALSE(LucasLehmer::is_mersenne_prime(523));
}

TEST(LucasLehmer, ResidueIsDeterministicVerificationArtifact) {
  // Prime residues are 0; composite residues are reproducible non-zero
  // values (what GIMPS double-checking compares).
  EXPECT_EQ(LucasLehmer::residue(13), 0u);
  const std::uint64_t r1 = LucasLehmer::residue(37);
  const std::uint64_t r2 = LucasLehmer::residue(37);
  EXPECT_EQ(r1, r2);
  EXPECT_NE(r1, 0u);
}

TEST(LucasLehmer, RejectsOutOfRange) {
  EXPECT_THROW(LucasLehmer::is_mersenne_prime(1), Error);
  EXPECT_THROW(LucasLehmer::is_mersenne_prime(5000), Error);
}

TEST(BigUintOps, MersenneConstruction) {
  EXPECT_EQ(BigUint::mersenne(5).bit_length(), 5u);   // 31
  EXPECT_EQ(BigUint::mersenne(32).bit_length(), 32u);
  EXPECT_EQ(BigUint::mersenne(33).bit_length(), 33u);
}

TEST(BigUintOps, MultiplyAndReduce) {
  // 31^2 = 961; 961 mod 31 = 0.
  const BigUint m5 = BigUint::mersenne(5);
  EXPECT_TRUE(m5.multiply(m5).mod_mersenne(5).is_zero());
  // 4^2 - 2 = 14 mod 7 = 0 -> M_3 prime after one step.
  BigUint s(4);
  s = s.multiply(s).subtract_small(2).mod_mersenne(3);
  EXPECT_TRUE(s.is_zero());
}

TEST(BigUintOps, SubtractUnderflowThrows) {
  EXPECT_THROW(BigUint(1).subtract_small(2), Error);
}

// ---- stress-ng methods ----------------------------------------------------------------

TEST(StressNg, MatrixprodChecksumFiniteAndSeeded) {
  const long double a = stressng_matrixprod(24, 1);
  const long double b = stressng_matrixprod(24, 1);
  const long double c = stressng_matrixprod(24, 2);
  EXPECT_TRUE(std::isfinite(static_cast<double>(a)));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(StressNg, SqrtLoopConvergesFinite) {
  const double checksum = stressng_sqrt(10000, 5);
  EXPECT_TRUE(std::isfinite(checksum));
  EXPECT_GT(checksum, 0.0);
}

TEST(StressNg, FlopCount) {
  EXPECT_DOUBLE_EQ(stressng_matrixprod_flops(10), 2000.0);
}

}  // namespace
}  // namespace fs2::baselines
