// Tests of the chaos/fault-injection subsystem: the --chaos grammar and its
// determinism guarantees, the seeded reconnect backoff, wire-protocol
// hardening against malformed frames of every message type, budget
// re-apportionment across loss and rejoin, the rejoin protocol driven by
// hand-rolled raw connections against a live coordinator (barrier re-check,
// double-rejoin), and the end-to-end loopback fleet surviving a chaos kill.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>

#include "cluster/clock_sync.hpp"
#include "cluster/fault_injection.hpp"
#include "cluster/coordinator.hpp"
#include "cluster/metrics_plane.hpp"
#include "cluster/messages.hpp"
#include "cluster/transport.hpp"
#include "cluster/wire.hpp"
#include "control/budget.hpp"
#include "firestarter/config.hpp"
#include "firestarter/firestarter.hpp"
#include "util/rng.hpp"

namespace {

using namespace fs2;
using namespace fs2::cluster;

// ---- FaultPlan grammar ------------------------------------------------------

TEST(FaultPlan, ParsesFullGrammar) {
  const FaultPlan plan = FaultPlan::parse(
      "seed=7,drop=1%,delay=5ms+-3ms,corrupt=0.1%,truncate=0.5%,"
      "stall=node3@t12s:2s,kill=node7@phase2,kill=node1@t30s");
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_DOUBLE_EQ(plan.drop, 0.01);
  EXPECT_DOUBLE_EQ(plan.corrupt, 0.001);
  EXPECT_DOUBLE_EQ(plan.truncate, 0.005);
  EXPECT_DOUBLE_EQ(plan.delay_s, 0.005);
  EXPECT_DOUBLE_EQ(plan.delay_jitter_s, 0.003);
  ASSERT_EQ(plan.stalls.size(), 1u);
  EXPECT_EQ(plan.stalls[0].node, "node3");
  EXPECT_DOUBLE_EQ(plan.stalls[0].t_s, 12.0);
  EXPECT_DOUBLE_EQ(plan.stalls[0].duration_s, 2.0);
  ASSERT_EQ(plan.kills.size(), 2u);
  ASSERT_TRUE(plan.kills[0].phase.has_value());
  EXPECT_EQ(*plan.kills[0].phase, 2u);
  ASSERT_TRUE(plan.kills[1].t_s.has_value());
  EXPECT_DOUBLE_EQ(*plan.kills[1].t_s, 30.0);
  // The UTF-8 ± spelling parses identically to the ASCII +-.
  const FaultPlan utf8 = FaultPlan::parse("delay=5ms\xc2\xb1"
                                          "3ms");
  EXPECT_DOUBLE_EQ(utf8.delay_s, plan.delay_s);
  EXPECT_DOUBLE_EQ(utf8.delay_jitter_s, plan.delay_jitter_s);
}

TEST(FaultPlan, DescribeRoundTripsThroughParse) {
  const char* spec =
      "seed=11,drop=2%,corrupt=0.1%,delay=2ms+-1ms,kill=node5@phase1,"
      "stall=node3@t12s:2s";
  const FaultPlan plan = FaultPlan::parse(spec);
  const FaultPlan replay = FaultPlan::parse(plan.describe());
  EXPECT_EQ(replay.describe(), plan.describe());
  EXPECT_EQ(replay.seed, plan.seed);
  EXPECT_DOUBLE_EQ(replay.drop, plan.drop);
  EXPECT_DOUBLE_EQ(replay.delay_jitter_s, plan.delay_jitter_s);
  ASSERT_EQ(replay.kills.size(), 1u);
  ASSERT_EQ(replay.stalls.size(), 1u);
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("drop"), ConfigError);          // no '='
  EXPECT_THROW(FaultPlan::parse("drop="), ConfigError);         // empty value
  EXPECT_THROW(FaultPlan::parse("drop=150%"), ConfigError);     // p > 1
  EXPECT_THROW(FaultPlan::parse("drop=oops"), ConfigError);     // not a number
  EXPECT_THROW(FaultPlan::parse("delay=5"), ConfigError);       // missing unit
  EXPECT_THROW(FaultPlan::parse("delay=5ms~3ms"), ConfigError); // bad jitter sep
  EXPECT_THROW(FaultPlan::parse("kill=node5"), ConfigError);    // no '@when'
  EXPECT_THROW(FaultPlan::parse("kill=node5@never"), ConfigError);
  EXPECT_THROW(FaultPlan::parse("stall=node3@phase1"), ConfigError);
  EXPECT_THROW(FaultPlan::parse("warp=1%"), ConfigError);       // unknown key
}

TEST(FaultPlan, CueMatchingCoversLoopbackNames) {
  EXPECT_TRUE(FaultPlan::node_matches("node5", "n5-zen2"));
  EXPECT_TRUE(FaultPlan::node_matches("n5", "n5-zen2"));
  EXPECT_TRUE(FaultPlan::node_matches("n5", "n5"));
  EXPECT_TRUE(FaultPlan::node_matches("alpha", "alpha"));
  EXPECT_FALSE(FaultPlan::node_matches("n5", "n51-zen2"));  // no prefix bleed
  EXPECT_FALSE(FaultPlan::node_matches("node5", "n6-zen2"));
  EXPECT_FALSE(FaultPlan::node_matches("nx", "n5-zen2"));
}

// ---- determinism ------------------------------------------------------------

std::vector<LinkFaults::Verdict> sample_schedule(const FaultPlan& plan,
                                                 const std::string& node, int frames) {
  LinkFaults link = plan.link(node);
  std::vector<LinkFaults::Verdict> out;
  for (int i = 0; i < frames; ++i)
    out.push_back(link.on_send(MessageType::kSampleBatch, 64));
  return out;
}

TEST(FaultPlan, SameSeedReproducesTheSameFaultSchedule) {
  const char* spec = "seed=42,drop=20%,corrupt=20%,truncate=20%,delay=1ms+-1ms";
  const auto a = sample_schedule(FaultPlan::parse(spec), "n3-zen2", 500);
  const auto b = sample_schedule(FaultPlan::parse(spec), "n3-zen2", 500);
  ASSERT_EQ(a.size(), b.size());
  int faults = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].drop, b[i].drop);
    EXPECT_EQ(a[i].corrupt_bit, b[i].corrupt_bit);
    EXPECT_EQ(a[i].truncate_to, b[i].truncate_to);
    EXPECT_DOUBLE_EQ(a[i].delay_s, b[i].delay_s);
    if (a[i].drop || a[i].corrupt_bit != LinkFaults::kNone ||
        a[i].truncate_to != LinkFaults::kNone)
      ++faults;
  }
  EXPECT_GT(faults, 0) << "20% rates over 500 frames must fire";
  // Per-link streams are independent: another node sees a different
  // schedule from the same plan (seed ^ hash(name) decorrelates them).
  const auto c = sample_schedule(FaultPlan::parse(spec), "n4-zen2", 500);
  int diffs = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].drop != c[i].drop || a[i].corrupt_bit != c[i].corrupt_bit) ++diffs;
  EXPECT_GT(diffs, 0);
}

TEST(FaultPlan, ControlPlaneFramesAreNeverDroppedOrMangled) {
  const FaultPlan plan = FaultPlan::parse("seed=1,drop=100%,corrupt=100%,truncate=100%");
  LinkFaults link = plan.link("n0");
  for (const MessageType type :
       {MessageType::kHello, MessageType::kPhaseBracket, MessageType::kPhaseGo,
        MessageType::kBudgetReport, MessageType::kVerdict, MessageType::kRejoin}) {
    const LinkFaults::Verdict v = link.on_send(type, 64);
    EXPECT_FALSE(v.drop) << to_string(type);
    EXPECT_EQ(v.corrupt_bit, LinkFaults::kNone) << to_string(type);
    EXPECT_EQ(v.truncate_to, LinkFaults::kNone) << to_string(type);
  }
  // Telemetry, by contrast, is fair game.
  const LinkFaults::Verdict v = link.on_send(MessageType::kSampleBatch, 64);
  EXPECT_TRUE(v.drop);
}

TEST(Backoff, DeterministicScheduleWithBoundedJitter) {
  Backoff::Options opts;
  opts.base_s = 0.05;
  opts.factor = 2.0;
  opts.max_s = 2.0;
  opts.jitter = 0.2;
  opts.seed = 99;
  Backoff a(opts), b(opts);
  double nominal = opts.base_s;
  for (int attempt = 0; attempt < 12; ++attempt) {
    const double da = a.next_s();
    const double db = b.next_s();
    EXPECT_DOUBLE_EQ(da, db) << "same seed, attempt " << attempt;
    EXPECT_GE(da, nominal * (1.0 - opts.jitter) - 1e-12);
    EXPECT_LE(da, nominal * (1.0 + opts.jitter) + 1e-12);
    nominal = std::min(nominal * opts.factor, opts.max_s);
  }
  // Different seeds must not synchronize their reconnect storms.
  opts.seed = 100;
  Backoff c(opts);
  a.reset();
  int diffs = 0;
  for (int attempt = 0; attempt < 12; ++attempt)
    if (a.next_s() != c.next_s()) ++diffs;
  EXPECT_GT(diffs, 0);
  EXPECT_EQ(a.attempts(), 12u);
}

// ---- wire-protocol hardening ------------------------------------------------

/// Decode `payload` as `type`; returns true if the decoder accepted it.
/// Anything other than a clean return or a WireError is a hardening bug
/// (uncaught std::length_error from a hostile vector resize, a segfault,
/// an infinite loop) — the gtest harness converts those into failures.
bool decode_any(MessageType type, const std::vector<std::uint8_t>& payload) {
  WireReader in(payload);
  try {
    switch (type) {
      case MessageType::kHello: HelloMsg::decode(in); break;
      case MessageType::kSyncProbe: SyncProbeMsg::decode(in); break;
      case MessageType::kSyncReply: SyncReplyMsg::decode(in); break;
      case MessageType::kCampaign: CampaignMsg::decode(in); break;
      case MessageType::kEpoch: EpochMsg::decode(in); break;
      case MessageType::kChannel: ChannelMsg::decode(in); break;
      case MessageType::kPhaseBracket: PhaseBracketMsg::decode(in); break;
      case MessageType::kSampleBatch: SampleBatchMsg::decode(in); break;
      case MessageType::kPhaseGo: PhaseGoMsg::decode(in); break;
      case MessageType::kBudgetReport: BudgetReportMsg::decode(in); break;
      case MessageType::kBudgetAssign: BudgetAssignMsg::decode(in); break;
      case MessageType::kVerdict: VerdictMsg::decode(in); break;
      case MessageType::kShutdown: ShutdownMsg::decode(in); break;
      case MessageType::kNodeSummary: NodeSummaryMsg::decode(in); break;
      case MessageType::kTraceSpans: TraceSpansMsg::decode(in); break;
      case MessageType::kCounterSnapshot: CounterSnapshotMsg::decode(in); break;
      case MessageType::kStatusRequest: StatusRequestMsg::decode(in); break;
      case MessageType::kStatusReply: StatusReplyMsg::decode(in); break;
      case MessageType::kMetricUpdate: MetricUpdateMsg::decode(in); break;
      case MessageType::kFlightRecord: FlightRecordMsg::decode(in); break;
      case MessageType::kRejoin: RejoinMsg::decode(in); break;
      case MessageType::kRejoinAck: RejoinAckMsg::decode(in); break;
    }
  } catch (const WireError&) {
    return false;  // the one sanctioned failure mode
  }
  return true;
}

/// One well-formed exemplar frame per message type, with strings and
/// vectors populated so truncation cuts through length-prefixed fields.
std::vector<Frame> exemplar_frames() {
  std::vector<Frame> frames;
  { HelloMsg m; m.node_name = "alpha"; m.sku = "sim-zen2@1500MHz"; frames.push_back(m.encode()); }
  { SyncProbeMsg m; m.seq = 3; m.t_coord_s = 1.5; frames.push_back(m.encode()); }
  { SyncReplyMsg m; m.seq = 3; m.t_coord_s = 1.5; m.t_agent_s = 1.6; frames.push_back(m.encode()); }
  { CampaignMsg m; m.campaign_text = "phase name=p duration=5\n"; m.has_budget = 1;
    m.campaign_id = 0xFEEDF00Dull; frames.push_back(m.encode()); }
  { EpochMsg m; m.t0_agent_s = 12.0; frames.push_back(m.encode()); }
  { ChannelMsg m; m.channel_id = 2; m.name = "sim-wall-power"; m.unit = "W";
    frames.push_back(m.encode()); }
  { PhaseBracketMsg m; m.phase_index = 1; m.phase_name = "hold"; frames.push_back(m.encode()); }
  { SampleBatchMsg m; m.channel_id = 2;
    for (int i = 0; i < 4; ++i) m.samples.push_back(telemetry::Sample{i * 0.05, 250.0});
    frames.push_back(m.encode()); }
  { PhaseGoMsg m; m.phase_index = 2; frames.push_back(m.encode()); }
  { BudgetReportMsg m; m.seq = 9; m.achieved_w = 240.0; frames.push_back(m.encode()); }
  { BudgetAssignMsg m; m.seq = 9; m.setpoint_w = 260.0; frames.push_back(m.encode()); }
  { VerdictMsg m; m.detail = "3 phases on sim-zen2"; frames.push_back(m.encode()); }
  { ShutdownMsg m; frames.push_back(m.encode()); }
  { NodeSummaryMsg m; m.name = "sim-wall-power"; m.unit = "W"; m.samples = 100;
    frames.push_back(m.encode()); }
  { TraceSpansMsg m; m.spans.push_back(trace::Span{"agent.phase", 1.0, 2.0});
    frames.push_back(m.encode()); }
  { CounterSnapshotMsg m; frames.push_back(m.encode()); }
  { StatusRequestMsg m; frames.push_back(m.encode()); }
  { StatusReplyMsg m; m.nodes_expected = 2;
    StatusNodeRec rec; rec.name = "alpha"; rec.sku = "sim-zen2"; rec.rejoins = 1;
    m.nodes.push_back(rec);
    StatusSpreadRec spread; spread.phase = "hold"; spread.min_node = "alpha";
    spread.max_node = "beta"; m.spreads.push_back(spread);
    StatusAlertRec alert; alert.kind = "node-lost"; alert.node = "beta";
    alert.detail = "peer closed"; m.alerts.push_back(alert);
    frames.push_back(m.encode()); }
  { MetricUpdateMsg m; m.seq = 1; frames.push_back(m.encode()); }
  { FlightRecordMsg m; m.reason = "test"; m.dump = "dump text"; frames.push_back(m.encode()); }
  { RejoinMsg m; m.node_name = "alpha"; m.campaign_id = 0xFEEDF00Dull;
    m.phases_ended = 1; frames.push_back(m.encode()); }
  { RejoinAckMsg m; m.accepted = 1; m.resume_phase = 1; m.detail = "ok";
    frames.push_back(m.encode()); }
  return frames;
}

TEST(WireHardening, ExemplarCorpusCoversEveryMessageType) {
  // If a new MessageType lands without an exemplar, the corpus silently
  // stops covering it — fail loudly instead.
  const auto frames = exemplar_frames();
  EXPECT_EQ(frames.size(), 22u);
  std::vector<bool> seen(64, false);
  for (const Frame& f : frames) {
    const auto idx = static_cast<std::size_t>(f.type);
    EXPECT_FALSE(seen[idx]) << "duplicate exemplar for " << to_string(f.type);
    seen[idx] = true;
    EXPECT_TRUE(decode_any(f.type, f.payload))
        << to_string(f.type) << ": a well-formed frame must decode";
  }
}

TEST(WireHardening, TruncationAtEveryLengthFailsCleanly) {
  for (const Frame& frame : exemplar_frames()) {
    for (std::size_t cut = 0; cut < frame.payload.size(); ++cut) {
      const std::vector<std::uint8_t> prefix(frame.payload.begin(),
                                             frame.payload.begin() + cut);
      // Must return or throw WireError; any other escape fails the test.
      decode_any(frame.type, prefix);
    }
    // Trailing garbage after a complete message must not break the decode
    // of the declared fields (framing already bounds the payload).
    std::vector<std::uint8_t> padded = frame.payload;
    padded.insert(padded.end(), 16, 0xAA);
    EXPECT_TRUE(decode_any(frame.type, padded)) << to_string(frame.type);
  }
}

TEST(WireHardening, SeededBitFlipsNeverEscapeAsUB) {
  Xoshiro256 rng(2024);
  for (const Frame& frame : exemplar_frames()) {
    if (frame.payload.empty()) continue;
    for (int trial = 0; trial < 64; ++trial) {
      std::vector<std::uint8_t> mutated = frame.payload;
      // Flip 1-3 bits; length-prefix bytes are in range, so hostile string
      // and vector lengths get exercised constantly.
      const int flips = 1 + static_cast<int>(rng.below(3));
      for (int f = 0; f < flips; ++f) {
        const std::size_t bit = rng.below(mutated.size() * 8);
        mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      }
      decode_any(frame.type, mutated);  // clean accept or WireError only
    }
  }
}

TEST(WireHardening, HostileLengthPrefixesAreRejectedNotAllocated) {
  // A length prefix of ~4 GiB must throw before any allocation attempt.
  for (const MessageType type :
       {MessageType::kHello, MessageType::kCampaign, MessageType::kSampleBatch,
        MessageType::kTraceSpans, MessageType::kStatusReply, MessageType::kRejoin}) {
    WireWriter w;
    w.u32(0xFFFFFFFFu);  // absurd count/length with no bytes behind it
    EXPECT_FALSE(decode_any(type, w.bytes())) << to_string(type);
  }
}

// ---- budget re-apportionment across loss and rejoin -------------------------

TEST(Budget, LossReapportionsToSurvivorsAtTheMomentOfLoss) {
  control::BudgetApportioner budget(1000.0, 4);
  for (std::size_t n = 0; n < 4; ++n) budget.on_report(n, 250.0);
  EXPECT_NEAR(budget.total_achieved_w(), 1000.0, 1e-9);
  EXPECT_NEAR(budget.share_w(0), 250.0, 1e-9);

  budget.on_node_lost(2);
  EXPECT_FALSE(budget.active(2));
  EXPECT_EQ(budget.active_count(), 3u);
  // The dead node's stale 250 W no longer count; each survivor's implied
  // share absorbs a third of the freed budget immediately.
  EXPECT_NEAR(budget.total_achieved_w(), 750.0, 1e-9);
  EXPECT_NEAR(budget.share_w(0), 1000.0 / 3.0, 1e-6);
  // The lost node itself holds no share while lost.
  EXPECT_NEAR(budget.share_w(2), 0.0, 1e-9);

  budget.on_node_rejoin(2);
  EXPECT_TRUE(budget.active(2));
  EXPECT_EQ(budget.active_count(), 4u);
  // Ramp-in treats the rejoiner like an unreported node at its equal
  // share, so the denominator is whole again and survivors fall back.
  EXPECT_NEAR(budget.total_achieved_w(), 1000.0, 1e-9);
  EXPECT_NEAR(budget.share_w(0), 250.0, 1e-6);
  EXPECT_NEAR(budget.share_w(2), 250.0, 1e-6);
}

// ---- rejoin protocol against a live coordinator -----------------------------

/// Minimal hand-rolled agent: speaks just enough of the protocol to drive
/// the coordinator through handshake, brackets, verdict, and shutdown —
/// with every step under test control (unlike SimFleet, which recovers on
/// its own and would hide the intermediate states these tests assert).
struct FakeAgent {
  Connection conn;
  CampaignMsg campaign;
  EpochMsg epoch;
  bool have_campaign = false;
  bool have_epoch = false;

  /// Connect and say hello — admission (clock sync, campaign, epoch) is
  /// served separately, because the coordinator syncs nodes one at a time
  /// in admission order: with several fake agents on ONE test thread, each
  /// must take its turn answering probes while the others hold back.
  static FakeAgent dial(std::uint16_t port, const std::string& name) {
    FakeAgent agent;
    agent.conn = Connection::connect("127.0.0.1:" + std::to_string(port));
    HelloMsg hello;
    hello.node_name = name;
    hello.sku = "fake";
    agent.conn.send(hello.encode());
    return agent;
  }

  /// Handle at most one admission frame (clock-sync probe, campaign, or
  /// epoch); false on timeout.
  bool poll_admission(double timeout_s) {
    if (have_campaign && have_epoch) return false;
    const auto frame = conn.recv(timeout_s);
    if (!frame) return false;
    WireReader in(frame->payload);
    if (frame->type == MessageType::kSyncProbe) {
      const SyncProbeMsg probe = SyncProbeMsg::decode(in);
      SyncReplyMsg reply;
      reply.seq = probe.seq;
      reply.t_coord_s = probe.t_coord_s;
      reply.t_agent_s = local_clock_s();
      conn.send(reply.encode());
    } else if (frame->type == MessageType::kCampaign) {
      campaign = CampaignMsg::decode(in);
      have_campaign = true;
    } else if (frame->type == MessageType::kEpoch) {
      epoch = EpochMsg::decode(in);
      have_epoch = true;
    } else {
      throw WireError(std::string("fake agent: unexpected ") + to_string(frame->type));
    }
    return true;
  }

  /// Answer clock-sync probes until the campaign and epoch both arrive
  /// (single-agent path: rejoin replay, or a fleet of one).
  void serve_until_epoch() {
    have_campaign = have_epoch = false;
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (!have_campaign || !have_epoch) {
      if (std::chrono::steady_clock::now() > deadline)
        throw WireError("fake agent: handshake stalled");
      poll_admission(/*timeout_s=*/1.0);
    }
  }

  /// Round-robin the admission exchange across a whole fake fleet until
  /// every agent holds its campaign and epoch.
  static void serve_all(std::initializer_list<FakeAgent*> agents) {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
      bool all = true;
      for (FakeAgent* agent : agents)
        all = all && agent->have_campaign && agent->have_epoch;
      if (all) return;
      if (std::chrono::steady_clock::now() > deadline)
        throw WireError("fake agent: fleet handshake stalled");
      for (FakeAgent* agent : agents) agent->poll_admission(/*timeout_s=*/0.05);
    }
  }

  void send_bracket(bool begin, std::uint32_t phase, const char* name) {
    PhaseBracketMsg msg;
    msg.is_begin = begin ? 1 : 0;
    msg.phase_index = phase;
    msg.phase_name = name;
    msg.duration_s = 1.0;
    msg.epoch_elapsed_s = 0.5 + phase;  // identical per phase: zero spread
    conn.send(msg.encode());
  }

  void await_go(std::uint32_t phase) {
    for (;;) {
      const auto frame = conn.recv(/*timeout_s=*/10.0);
      if (!frame) throw WireError("fake agent: waiting for phase-go on a dead link");
      if (frame->type != MessageType::kPhaseGo) continue;  // ignore chatter
      WireReader in(frame->payload);
      const PhaseGoMsg go = PhaseGoMsg::decode(in);
      if (go.phase_index == phase) return;
    }
  }

  void send_verdict() {
    VerdictMsg verdict;
    verdict.detail = "fake agent";
    conn.send(verdict.encode());
  }

  void await_shutdown() {
    for (;;) {
      const auto frame = conn.recv(/*timeout_s=*/10.0);
      if (!frame) throw WireError("fake agent: no shutdown");
      if (frame->type == MessageType::kShutdown) return;
    }
  }

  /// The reconnect path: a fresh socket presenting the rejoin handshake,
  /// then the replayed admission sequence (ack, clock sync, campaign,
  /// epoch). Returns the acked resume phase.
  std::uint32_t rejoin(std::uint16_t port, const std::string& name,
                       std::uint32_t phases_ended) {
    conn = Connection::connect("127.0.0.1:" + std::to_string(port));
    RejoinMsg msg;
    msg.node_name = name;
    msg.campaign_id = campaign.campaign_id;
    msg.phases_ended = phases_ended;
    conn.send(msg.encode());
    const auto frame = conn.recv(/*timeout_s=*/10.0);
    if (!frame || frame->type != MessageType::kRejoinAck)
      throw WireError("fake agent: expected rejoin ack");
    WireReader in(frame->payload);
    const RejoinAckMsg ack = RejoinAckMsg::decode(in);
    if (ack.accepted == 0) throw WireError("fake agent: rejoin refused: " + ack.detail);
    serve_until_epoch();
    return ack.resume_phase;
  }
};

struct CoordinatorHarness {
  Coordinator coordinator;
  std::ostringstream out;
  Coordinator::Result result;
  std::thread thread;
  bool failed = false;
  std::string error;

  explicit CoordinatorHarness(std::size_t nodes, std::size_t phases,
                              double rejoin_grace_s = 5.0)
      : coordinator([&] {
          Coordinator::Options options;
          options.loopback_only = true;
          options.nodes = nodes;
          options.phase_count = phases;
          std::string text;
          for (std::size_t p = 0; p < phases; ++p)
            text += "phase name=p" + std::to_string(p) + " duration=1\n";
          options.campaign_text = text;
          options.start_delay_s = 0.05;
          options.metrics_interval_s = 0.0;  // no metrics plane: protocol only
          options.rejoin_grace_s = rejoin_grace_s;
          return options;
        }()) {
    thread = std::thread([this] {
      try {
        result = coordinator.run(out);
      } catch (const std::exception& e) {
        failed = true;
        error = e.what();
      }
    });
  }

  ~CoordinatorHarness() {
    if (thread.joinable()) thread.join();
  }
};

TEST(Rejoin, DuringBarrierRechecksBarrierAndFleetCompletes) {
  CoordinatorHarness harness(2, 2);
  FakeAgent alpha = FakeAgent::dial(harness.coordinator.port(), "alpha");
  FakeAgent beta = FakeAgent::dial(harness.coordinator.port(), "beta");
  FakeAgent::serve_all({&alpha, &beta});
  ASSERT_EQ(alpha.campaign.campaign_id, beta.campaign.campaign_id);

  // Alpha completes phase 0 and waits at the barrier. Beta begins phase 0
  // and dies mid-phase: the barrier must HOLD (grace window open), not
  // release with a waived vote.
  alpha.send_bracket(true, 0, "p0");
  alpha.send_bracket(false, 0, "p0");
  beta.send_bracket(true, 0, "p0");
  beta.conn.close();

  // If the barrier had released without beta, alpha would see its phase-go
  // almost immediately; give that wrong outcome a moment to materialize.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  // Beta's replacement rejoins claiming no completed phases: the
  // coordinator must resume it at phase 0 (its interrupted phase).
  const std::uint32_t resume = beta.rejoin(harness.coordinator.port(), "beta", 0);
  EXPECT_EQ(resume, 0u);

  // The re-run of phase 0 completes the barrier; both proceed to phase 1.
  beta.send_bracket(true, 0, "p0");
  beta.send_bracket(false, 0, "p0");
  alpha.await_go(1);
  beta.await_go(1);
  alpha.send_bracket(true, 1, "p1");
  beta.send_bracket(true, 1, "p1");
  alpha.send_bracket(false, 1, "p1");
  beta.send_bracket(false, 1, "p1");
  alpha.send_verdict();
  beta.send_verdict();
  alpha.await_shutdown();
  beta.await_shutdown();
  harness.thread.join();

  ASSERT_FALSE(harness.failed) << harness.error;
  ASSERT_EQ(harness.result.nodes.size(), 2u);
  EXPECT_TRUE(harness.result.nodes_converged);
  EXPECT_EQ(harness.result.nodes[1].rejoins, 1u);
  // The loss and recovery both landed in the alert stream.
  bool lost = false, recovered = false;
  for (const Alert& alert : harness.result.alerts) {
    if (alert.kind == "node-lost" && alert.node == "beta") lost = true;
    if (alert.kind == "node-recovered" && alert.node == "beta") recovered = true;
  }
  EXPECT_TRUE(lost);
  EXPECT_TRUE(recovered);
}

TEST(Rejoin, DoubleRejoinKeepsExactlyOneLiveConnection) {
  CoordinatorHarness harness(2, 1);
  FakeAgent alpha = FakeAgent::dial(harness.coordinator.port(), "alpha");
  FakeAgent beta = FakeAgent::dial(harness.coordinator.port(), "beta");
  FakeAgent::serve_all({&alpha, &beta});

  alpha.send_bracket(true, 0, "p0");
  beta.send_bracket(true, 0, "p0");

  // Beta's link goes half-open: the agent side believes it dead and dials
  // back in, but the coordinator still sees the old socket as live. Latest
  // wins — the coordinator must adopt the new socket and close the stale
  // one, leaving exactly one live connection for beta.
  Connection stale = std::move(beta.conn);
  const std::uint32_t resume = beta.rejoin(harness.coordinator.port(), "beta", 0);
  EXPECT_EQ(resume, 0u);

  // The stale socket is dead: the coordinator closed it during the swap.
  Frame frame;
  EXPECT_THROW(
      {
        while (stale.recv_into(frame, /*timeout_s=*/5.0)) {
        }
        throw WireError("stale socket still open after double-rejoin");
      },
      WireError);

  // The fresh socket drives the rest of the campaign to a clean verdict —
  // proof the coordinator follows the new connection, not the old one.
  beta.send_bracket(true, 0, "p0");
  alpha.send_bracket(false, 0, "p0");
  beta.send_bracket(false, 0, "p0");
  alpha.send_verdict();
  beta.send_verdict();
  alpha.await_shutdown();
  beta.await_shutdown();
  harness.thread.join();

  ASSERT_FALSE(harness.failed) << harness.error;
  EXPECT_TRUE(harness.result.nodes_converged);
  EXPECT_EQ(harness.result.nodes[1].rejoins, 1u);
}

TEST(Rejoin, GarbageMidRunClientNeverWedgesTheCoordinator) {
  CoordinatorHarness harness(1, 1);
  FakeAgent alpha = FakeAgent::dial(harness.coordinator.port(), "alpha");
  alpha.serve_until_epoch();
  alpha.send_bracket(true, 0, "p0");

  {
    // A client that frames garbage: an absurd declared length (way past
    // kMaxFrameBytes), then hangs up. The coordinator must shrug it off.
    Connection garbage =
        Connection::connect("127.0.0.1:" + std::to_string(harness.coordinator.port()));
    const std::uint8_t junk[] = {0xFF, 0xFF, 0xFF, 0x7F, 0xEE, 0x01, 0x02};
    ASSERT_GT(::send(garbage.fd(), junk, sizeof junk, 0), 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  {
    // A rejoin for a node the coordinator never admitted: refused with a
    // clean ack, no side effects on the real fleet.
    Connection impostor =
        Connection::connect("127.0.0.1:" + std::to_string(harness.coordinator.port()));
    RejoinMsg msg;
    msg.node_name = "never-admitted";
    msg.campaign_id = alpha.campaign.campaign_id;
    impostor.send(msg.encode());
    const auto reply = impostor.recv(/*timeout_s=*/5.0);
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->type, MessageType::kRejoinAck);
    WireReader in(reply->payload);
    EXPECT_EQ(RejoinAckMsg::decode(in).accepted, 0);
  }

  // The campaign proceeds as if nothing happened.
  alpha.send_bracket(false, 0, "p0");
  alpha.send_verdict();
  alpha.await_shutdown();
  harness.thread.join();
  ASSERT_FALSE(harness.failed) << harness.error;
  EXPECT_TRUE(harness.result.nodes_converged);
  EXPECT_EQ(harness.result.nodes[0].rejoins, 0u);
}

// ---- end to end: loopback fleet under chaos ---------------------------------

std::string write_campaign(const char* path, const char* text) {
  std::ofstream out(path);
  out << text;
  return path;
}

TEST(ChaosFleet, KilledNodeRejoinsAndFleetConverges) {
  const std::string campaign = write_campaign("/tmp/fs2_chaos_kill.campaign",
                                              "phase name=ramp duration=10\n"
                                              "phase name=hold duration=14\n"
                                              "phase name=cool duration=10\n");
  firestarter::Config cfg;
  cfg.loopback_nodes = "zen2@1500x4";
  cfg.coordinator = true;
  cfg.campaign_file = campaign;
  cfg.target_spec = "cluster-power=1000W";
  cfg.require_convergence = true;
  cfg.chaos_spec = "seed=7,drop=1%,delay=1ms,kill=node1@phase1";
  cfg.seed = 11;
  cfg.log_level = "error";
  std::ostringstream out;
  firestarter::Firestarter app(cfg, out);
  const int code = app.run();
  const std::string output = out.str();
  EXPECT_EQ(code, 0) << output;
  // The kill, the recovery, and the rejoined node's contribution to the
  // final phase are all visible in the run report.
  EXPECT_NE(output.find("LOST mid-campaign"), std::string::npos) << output;
  EXPECT_NE(output.find("REJOINED at phase"), std::string::npos) << output;
  EXPECT_NE(output.find("node-recovered"), std::string::npos) << output;
  EXPECT_NE(output.find("'cool': start spread"), std::string::npos) << output;
  EXPECT_NE(output.find("across 4 nodes"), std::string::npos) << output;
  EXPECT_EQ(output.find("NOT converged"), std::string::npos) << output;
}

TEST(ChaosFleet, UnrecoveredLossFailsRequireConvergence) {
  const std::string campaign = write_campaign("/tmp/fs2_chaos_giveup.campaign",
                                              "phase name=ramp duration=8\n"
                                              "phase name=hold duration=8\n");
  firestarter::Config cfg;
  cfg.loopback_nodes = "zen2@1500x4";
  cfg.coordinator = true;
  cfg.campaign_file = campaign;
  cfg.target_spec = "cluster-power=1000W";
  cfg.require_convergence = true;
  cfg.chaos_spec = "seed=7,kill=node1@phase1";
  cfg.rejoin_grace_s = 0.0;  // give up instantly: the node can never return
  cfg.seed = 11;
  cfg.log_level = "error";
  std::ostringstream out;
  firestarter::Firestarter app(cfg, out);
  const int code = app.run();
  const std::string output = out.str();
  EXPECT_EQ(code, 1) << output;
  EXPECT_NE(output.find("given up"), std::string::npos) << output;
}

}  // namespace
