// End-to-end tests of the installed `fs2` binary via subprocess — the
// outermost integration layer (argument handling, exit codes, output
// formatting), exercised exactly the way a user runs it.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace {

struct CliResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

CliResult run_cli(const std::string& args) {
  const std::string command = std::string(FS2_BINARY_PATH) + " " + args + " 2>&1";
  FILE* pipe = ::popen(command.c_str(), "r");
  CliResult result;
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer;
  while (std::fgets(buffer.data(), buffer.size(), pipe) != nullptr)
    result.output += buffer.data();
  const int status = ::pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

TEST(Cli, HelpExitsZeroAndListsFlags) {
  const CliResult r = run_cli("--help");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("--run-instruction-groups"), std::string::npos);
  EXPECT_NE(r.output.find("--optimize=NSGA2"), std::string::npos);
}

TEST(Cli, VersionPrints) {
  const CliResult r = run_cli("--version");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("fs2 2.0.0"), std::string::npos);
}

TEST(Cli, AvailListsAllFunctions) {
  const CliResult r = run_cli("--avail");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("FUNC_FMA_256_ZEN2"), std::string::npos);
  EXPECT_NE(r.output.find("FUNC_AVX512_512_SKX"), std::string::npos);
}

TEST(Cli, UnknownFlagExitsTwoWithHint) {
  const CliResult r = run_cli("--frobnicate");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown flag"), std::string::npos);
  EXPECT_NE(r.output.find("--help"), std::string::npos);
}

TEST(Cli, MalformedGroupsExitsTwo) {
  const CliResult r = run_cli("--simulate=zen2 --run-instruction-groups=L1_P:1");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown access kind"), std::string::npos);
}

TEST(Cli, SimulatedRunPrintsSteadyStateAndCsv) {
  const CliResult r = run_cli(
      "--simulate=zen2 --freq 1500 -t 30 --measurement --start-delta=2000 --stop-delta=1000");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("steady state:"), std::string::npos);
  EXPECT_NE(r.output.find("metric,unit,samples,mean"), std::string::npos);
}

TEST(Cli, SimulatedHaswellGpuRun) {
  const CliResult r = run_cli("--simulate=haswell-gpu --freq 2000 -t 10");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("E5-2680 v3"), std::string::npos);
}

TEST(Cli, SimulatedOptimizationSmoke) {
  const CliResult r = run_cli(
      "--simulate=zen2 --freq 1500 --optimize=NSGA2 --individuals=6 --generations=2 -t 5 "
      "--optimization-log=/tmp/fs2_cli_opt.csv");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("selected optimum:"), std::string::npos);
  EXPECT_NE(r.output.find("18 candidate evaluations"), std::string::npos);
}

TEST(Cli, HostStressShortRun) {
  // Two worker threads for half a second on the real machine.
  const CliResult r = run_cli("-t 0.5 --threads 2 --log-level warn");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("kernel loop iterations"), std::string::npos);
}

TEST(Cli, SelftestPassesAndExitsZero) {
  const CliResult r = run_cli("--selftest=20000 --threads 2 --log-level warn");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("PASS"), std::string::npos);
}

TEST(Cli, PeriodMustBePositive) {
  const CliResult r = run_cli("--simulate=zen2 -p 0");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--period"), std::string::npos);
}

TEST(Cli, UnknownLoadProfileExitsTwo) {
  const CliResult r = run_cli("--simulate=zen2 -t 10 --load-profile=sawtooth");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown profile kind"), std::string::npos);
}

TEST(Cli, SimulatedSineProfileRun) {
  const CliResult r = run_cli(
      "--simulate=zen2 --freq 1500 -t 30 --load-profile=sine:low=10,high=90,period=5 "
      "--measurement --start-delta=2000 --stop-delta=1000");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("load profile: sine"), std::string::npos);
  EXPECT_NE(r.output.find("load-level,fraction"), std::string::npos);
}

TEST(Cli, SimulatedSquareProfileRun) {
  const CliResult r = run_cli(
      "--simulate=zen2 -t 20 --load-profile=square:low=0,high=100,period=4 "
      "--measurement --start-delta=0 --stop-delta=0");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("load profile: square"), std::string::npos);
}

TEST(Cli, SimulatedTraceProfileRun) {
  {
    std::ofstream trace("/tmp/fs2_cli_trace.csv");
    trace << "# recorded load\n0,20\n5,80\n10,40\n";
  }
  const CliResult r = run_cli(
      "--simulate=zen2 -t 30 --load-profile=trace:file=/tmp/fs2_cli_trace.csv,loop=1 "
      "--measurement --start-delta=0 --stop-delta=0");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("load profile: trace"), std::string::npos);
  EXPECT_NE(r.output.find("load-level,fraction"), std::string::npos);
}

TEST(Cli, CampaignEmitsOneSummaryRowPerPhaseAndMetric) {
  {
    std::ofstream campaign("/tmp/fs2_cli_campaign");
    campaign << "# three-phase acceptance campaign\n"
                "phase name=warmup duration=10 profile=constant:30\n"
                "phase name=swing  duration=20 profile=sine:low=10,high=90,period=5\n"
                "phase name=peak   duration=10 profile=square:low=0,high=100,period=2\n";
  }
  const CliResult r = run_cli("--simulate=zen2 --freq 1500 --campaign /tmp/fs2_cli_campaign");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("campaign: 3 phases"), std::string::npos);
  EXPECT_NE(r.output.find("metric,unit,samples,mean"), std::string::npos);
  for (const char* row : {"sim-wall-power,W", "load-level,fraction"})
    for (const char* phase : {"warmup", "swing", "peak"}) {
      // One attributed row per (metric, phase) pair.
      bool found = false;
      for (std::size_t pos = r.output.find(row); pos != std::string::npos;
           pos = r.output.find(row, pos + 1)) {
        const std::size_t eol = r.output.find('\n', pos);
        if (r.output.substr(pos, eol - pos).find(phase) != std::string::npos) found = true;
      }
      EXPECT_TRUE(found) << "no CSV row for metric " << row << " in phase " << phase;
    }
}

TEST(Cli, MalformedCampaignExitsTwoWithLineNumber) {
  {
    std::ofstream campaign("/tmp/fs2_cli_campaign_bad");
    campaign << "phase name=ok duration=5\nphase name=broken profile=constant\n";
  }
  const CliResult r = run_cli("--simulate=zen2 --campaign /tmp/fs2_cli_campaign_bad");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("line 2"), std::string::npos);
  EXPECT_NE(r.output.find("missing duration"), std::string::npos);
}

TEST(Cli, HostLoadProfileShortRun) {
  const CliResult r = run_cli(
      "-t 0.6 --threads 2 -p 50000 --load-profile=square:low=0,high=100,period=0.2 "
      "--log-level warn");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("kernel loop iterations"), std::string::npos);
}

TEST(Cli, HelpListsClosedLoopFlags) {
  const CliResult r = run_cli("--help");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("--target"), std::string::npos);
  EXPECT_NE(r.output.find("--record-trace"), std::string::npos);
  EXPECT_NE(r.output.find("--require-convergence"), std::string::npos);
}

TEST(Cli, SimClosedLoopConvergesToPowerSetpoint) {
  const CliResult r = run_cli(
      "--simulate=zen2 --freq 1500 -t 30 --target power=250W --require-convergence "
      "--measurement --start-delta=2000 --stop-delta=1000");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("converged"), std::string::npos);
  EXPECT_NE(r.output.find("ctl-setpoint,W"), std::string::npos);
  EXPECT_NE(r.output.find("ctl-output,fraction"), std::string::npos);
}

TEST(Cli, SimClosedLoopUnreachableFailsRequireConvergence) {
  const CliResult r = run_cli(
      "--simulate=zen2 --freq 1500 -t 30 --target power=5000W --require-convergence "
      "--log-level error");
  EXPECT_EQ(r.exit_code, 1);
}

TEST(Cli, MalformedTargetExitsTwo) {
  const CliResult r = run_cli("--target power=abc");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--target"), std::string::npos);
}

TEST(Cli, MalformedCampaignTargetExitsTwoWithPhaseName) {
  {
    std::ofstream campaign("/tmp/fs2_cli_campaign_bad_target");
    campaign << "phase name=hold duration=30 target=volts=1.0\n";
  }
  const CliResult r = run_cli("--simulate=zen2 --campaign /tmp/fs2_cli_campaign_bad_target");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("phase 'hold'"), std::string::npos);
  EXPECT_NE(r.output.find("power=WATTS or temp=DEGC"), std::string::npos);
}

TEST(Cli, ControlledPhaseShorterThanTickIntervalExitsTwo) {
  const CliResult r = run_cli("--simulate=zen2 -t 0.1 --target power=250W");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("shorter than two controller intervals"), std::string::npos);
}

TEST(Cli, BadRecordTracePathFailsBeforeStressing) {
  const CliResult r = run_cli(
      "--simulate=zen2 -t 30 --target power=250W "
      "--record-trace /nonexistent-dir/trace.csv");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("--record-trace"), std::string::npos);
  // Fails up front: no convergence verdict was produced first.
  EXPECT_EQ(r.output.find("converged"), std::string::npos);
}

TEST(Cli, SetpointCampaignProducesDistinctPlateaus) {
  {
    std::ofstream campaign("/tmp/fs2_cli_campaign_setpoints");
    campaign << "phase name=low  duration=30 target=power=200W\n"
                "phase name=high duration=30 target=power=320W\n";
  }
  const CliResult r = run_cli(
      "--simulate=zen2 --freq 1500 --campaign /tmp/fs2_cli_campaign_setpoints "
      "--require-convergence --log-level warn");
  EXPECT_EQ(r.exit_code, 0);
  // One converged wall-power plateau per phase, at the phase's setpoint.
  auto plateau = [&r](const std::string& phase) {
    // Find the sim-wall-power row carrying this phase's attribution.
    std::size_t row = r.output.find("sim-wall-power");
    while (row != std::string::npos) {
      const std::size_t eol = r.output.find('\n', row);
      const std::string line = r.output.substr(row, eol - row);
      if (line.find("," + phase) != std::string::npos) {
        const std::size_t mean_start = line.find(',', line.find(',', line.find(',') + 1) + 1) + 1;
        return std::stod(line.substr(mean_start));
      }
      row = r.output.find("sim-wall-power", eol);
    }
    return -1.0;
  };
  EXPECT_NEAR(plateau("low"), 200.0, 0.02 * 200.0);
  EXPECT_NEAR(plateau("high"), 320.0, 0.02 * 320.0);
}

TEST(Cli, RecordTraceReplaysThroughTraceProfile) {
  const CliResult record = run_cli(
      "--simulate=zen2 --freq 1500 -t 20 --target power=300W "
      "--record-trace /tmp/fs2_cli_recorded.csv --log-level warn");
  EXPECT_EQ(record.exit_code, 0);
  const CliResult replay = run_cli(
      "--simulate=zen2 --freq 1500 -t 20 "
      "--load-profile trace:file=/tmp/fs2_cli_recorded.csv --log-level warn");
  EXPECT_EQ(replay.exit_code, 0);
  EXPECT_NE(replay.output.find("trace:"), std::string::npos);
}

/// Mean column of the measurement-CSV row for `metric` attributed to
/// `phase` (empty = the first row for the metric).
double csv_row_mean(const std::string& output, const std::string& metric,
                    const std::string& phase) {
  std::size_t pos = output.find(metric + ",");
  while (pos != std::string::npos) {
    const std::size_t eol = output.find('\n', pos);
    const std::string line = output.substr(pos, eol - pos);
    if (phase.empty() || line.find("," + phase) != std::string::npos) {
      std::size_t field = 0;
      for (int commas = 0; commas < 3; ++commas) field = line.find(',', field) + 1;
      return std::stod(line.substr(field));
    }
    pos = output.find(metric + ",", eol);
  }
  return -1.0;
}

TEST(Cli, RecordedCampaignTraceReplaysAchievedLevels) {
  // Close the record -> replay loop quantitatively: a controlled campaign's
  // achieved duty-cycle trace, replayed open-loop, must reproduce the
  // achieved-level series — not merely parse.
  {
    std::ofstream campaign("/tmp/fs2_cli_rr.campaign");
    campaign << "phase name=low  duration=20 target=power=200W\n"
                "phase name=high duration=20 target=power=320W\n";
  }
  const CliResult record = run_cli(
      "--simulate=zen2 --freq 1500 --campaign /tmp/fs2_cli_rr.campaign "
      "--record-trace /tmp/fs2_cli_rr_trace.csv --log-level warn");
  ASSERT_EQ(record.exit_code, 0);
  const double low = csv_row_mean(record.output, "load-level", "low");
  const double high = csv_row_mean(record.output, "load-level", "high");
  ASSERT_GT(low, 0.0);
  ASSERT_GT(high, low);  // 320 W needs a higher duty cycle than 200 W

  const CliResult replay = run_cli(
      "--simulate=zen2 --freq 1500 -t 40 "
      "--load-profile trace:file=/tmp/fs2_cli_rr_trace.csv "
      "--measurement --start-delta=0 --stop-delta=0 --log-level warn");
  ASSERT_EQ(replay.exit_code, 0);
  const double replayed = csv_row_mean(replay.output, "load-level", "");
  ASSERT_GT(replayed, 0.0);
  // The replayed 40 s mean must match the recorded campaign's
  // duration-weighted mean level (equal 20 s phases -> plain average).
  // Tolerance covers trim differences and breakpoint collapsing.
  EXPECT_NEAR(replayed, (low + high) / 2.0, 0.03) << replay.output;
}

TEST(Cli, ClusterPowerWithoutCoordinatorExitsTwo) {
  const CliResult r = run_cli("--simulate=zen2 -t 10 --target cluster-power=500W");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--coordinator"), std::string::npos);
}

TEST(Cli, CoordinatorWithoutCampaignExitsTwo) {
  const CliResult r = run_cli("--coordinator --nodes 2");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("requires --campaign"), std::string::npos);
}

TEST(Cli, LoopbackClusterSmoke) {
  {
    std::ofstream campaign("/tmp/fs2_cli_cluster.campaign");
    campaign << "phase name=half duration=10 profile=constant:50\n";
  }
  const CliResult r = run_cli(
      "--loopback zen2@1500,haswell@2000 --campaign /tmp/fs2_cli_cluster.campaign "
      "--log-level warn");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("metric,unit,samples,mean"), std::string::npos);
  EXPECT_NE(r.output.find(",half,n0-zen2"), std::string::npos);
  EXPECT_NE(r.output.find(",half,n1-haswell"), std::string::npos);
  EXPECT_NE(r.output.find("cluster-power,W"), std::string::npos);
  EXPECT_NE(r.output.find("start spread"), std::string::npos);
}

TEST(Cli, HelpListsClusterFlags) {
  const CliResult r = run_cli("--help");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("--coordinator"), std::string::npos);
  EXPECT_NE(r.output.find("--agent HOST:PORT"), std::string::npos);
  EXPECT_NE(r.output.find("--loopback"), std::string::npos);
  EXPECT_NE(r.output.find("cluster-power=WATTS"), std::string::npos);
}

TEST(Cli, StatusRejectsMalformedEndpoint) {
  const CliResult r = run_cli("--status localhost");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("HOST:PORT"), std::string::npos);
}

TEST(Cli, HelpListsObservabilityFlags) {
  const CliResult r = run_cli("--help");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("--trace-out"), std::string::npos);
  EXPECT_NE(r.output.find("--status HOST:PORT"), std::string::npos);
}

TEST(Cli, TraceOutWritesLocalTimelineOnSimRun) {
  const char* path = "/tmp/fs2_cli_trace.json";
  std::remove(path);
  const CliResult r = run_cli(
      "--simulate=zen2 --freq 1500 -t 10 --trace-out /tmp/fs2_cli_trace.json "
      "--log-level warn");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("trace written to /tmp/fs2_cli_trace.json"), std::string::npos)
      << r.output;
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(buffer.str().find("\"local\""), std::string::npos);
  std::remove(path);
}

TEST(Cli, HostRegisterDump) {
  const CliResult r = run_cli(
      "-t 0.4 --threads 1 --dump-registers=0.2 --dump-path /tmp/fs2_cli_regs.dump "
      "--log-level warn");
  EXPECT_EQ(r.exit_code, 0);
  FILE* dump = std::fopen("/tmp/fs2_cli_regs.dump", "r");
  ASSERT_NE(dump, nullptr);
  char line[256] = {};
  EXPECT_NE(std::fgets(line, sizeof line, dump), nullptr);
  std::fclose(dump);
  EXPECT_NE(std::string(line).find("worker 0:"), std::string::npos);
}

}  // namespace
