// Tests of the cluster orchestration subsystem: wire encoding, framed TCP
// transport, RTT-compensated clock sync, budget apportioning, the
// coordinator-side telemetry merge, and the full loopback fleet —
// coordinator plus heterogeneous in-process sim agents exercising the
// whole protocol over real localhost sockets, deterministically.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include "cluster/agent.hpp"
#include "cluster/clock_sync.hpp"
#include "cluster/cluster_bus.hpp"
#include "cluster/coordinator.hpp"
#include "cluster/messages.hpp"
#include "cluster/remote_sink.hpp"
#include "cluster/transport.hpp"
#include "cluster/wire.hpp"
#include "control/budget.hpp"
#include "firestarter/config.hpp"
#include "firestarter/firestarter.hpp"
#include "firestarter/sim_fleet.hpp"
#include "sim/machine_config.hpp"
#include "trace/tracer.hpp"

namespace {

using namespace fs2;
using namespace fs2::cluster;

// ---- wire -------------------------------------------------------------------

TEST(Wire, RoundTripsPrimitives) {
  WireWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.f64(-273.15);
  w.str("fs2");
  w.str("");
  WireReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(r.f64(), -273.15);
  EXPECT_EQ(r.str(), "fs2");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.done());
}

TEST(Wire, TruncatedReadThrows) {
  WireWriter w;
  w.u32(7);
  WireReader r(w.bytes());
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_THROW(r.u8(), WireError);
  // A string length pointing past the end must not read out of bounds.
  WireWriter bad;
  bad.u32(1000);  // claims a 1000-byte string with no bytes following
  WireReader r2(bad.bytes());
  EXPECT_THROW(r2.str(), WireError);
}

// ---- messages ---------------------------------------------------------------

TEST(Messages, CampaignRoundTrip) {
  CampaignMsg msg;
  msg.campaign_text = "phase name=x duration=5\n";
  msg.has_budget = 1;
  msg.initial_setpoint_w = 250.0;
  msg.ctl_interval_s = 0.25;
  msg.budget_interval_s = 0.5;
  msg.budget_band = 0.02;
  const Frame frame = msg.encode();
  EXPECT_EQ(frame.type, MessageType::kCampaign);
  WireReader r(frame.payload);
  const CampaignMsg back = CampaignMsg::decode(r);
  EXPECT_EQ(back.campaign_text, msg.campaign_text);
  EXPECT_EQ(back.has_budget, 1);
  EXPECT_DOUBLE_EQ(back.initial_setpoint_w, 250.0);
  EXPECT_DOUBLE_EQ(back.budget_interval_s, 0.5);
}

TEST(Messages, SampleBatchRoundTrip) {
  SampleBatchMsg msg;
  msg.channel_id = 3;
  for (int i = 0; i < 300; ++i)
    msg.samples.push_back(telemetry::Sample{i * 0.05, 100.0 + i});
  const Frame frame = msg.encode();
  WireReader r(frame.payload);
  const SampleBatchMsg back = SampleBatchMsg::decode(r);
  ASSERT_EQ(back.samples.size(), 300u);
  EXPECT_DOUBLE_EQ(back.samples[299].time_s, 299 * 0.05);
  EXPECT_DOUBLE_EQ(back.samples[0].value, 100.0);
}

TEST(Messages, SampleBatchScratchReuseMatchesFreshDecode) {
  // The hot path encodes from a reused writer and decodes into a reused
  // message; both must agree with the allocating round trip bit for bit.
  std::vector<telemetry::Sample> samples;
  for (int i = 0; i < 100; ++i)
    samples.push_back(telemetry::Sample{i * 0.25, 300.0 - i});
  WireWriter scratch;
  scratch.u32(999);  // stale content the clear() must discard
  SampleBatchMsg::encode_into(scratch, 7, samples.data(), samples.size());

  SampleBatchMsg reused;
  reused.samples.assign(512, telemetry::Sample{9.0, 9.0});  // stale capacity
  WireReader r1(scratch.bytes());
  SampleBatchMsg::decode_into(r1, reused);
  EXPECT_EQ(reused.channel_id, 7u);
  ASSERT_EQ(reused.samples.size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(reused.samples[i].time_s, samples[i].time_s);
    EXPECT_DOUBLE_EQ(reused.samples[i].value, samples[i].value);
  }
}

TEST(Messages, SampleBatchRejectsHostileCount) {
  // A batch claiming 2^31 samples with a tiny payload must throw, not
  // allocate gigabytes.
  WireWriter w;
  w.u32(1);            // channel
  w.u32(0x80000000u);  // sample count
  WireReader r(w.bytes());
  EXPECT_THROW(SampleBatchMsg::decode(r), WireError);
}

TEST(Messages, PhaseBracketRoundTrip) {
  PhaseBracketMsg msg;
  msg.is_begin = 1;
  msg.phase_index = 2;
  msg.phase_name = "swing";
  msg.duration_s = 30.0;
  msg.time_offset_s = 40.0;
  msg.start_delta_s = 5.0;
  msg.stop_delta_s = 2.0;
  msg.epoch_elapsed_s = 40.123;
  const Frame frame = msg.encode();
  WireReader r(frame.payload);
  const PhaseBracketMsg back = PhaseBracketMsg::decode(r);
  EXPECT_EQ(back.phase_index, 2u);
  EXPECT_EQ(back.phase_name, "swing");
  EXPECT_DOUBLE_EQ(back.epoch_elapsed_s, 40.123);
}

// ---- transport --------------------------------------------------------------

TEST(Transport, FramesRoundTripOverLoopback) {
  Listener listener(0, /*loopback_only=*/true);
  ASSERT_GT(listener.port(), 0);

  std::thread client([port = listener.port()] {
    Connection conn = Connection::connect("127.0.0.1:" + std::to_string(port));
    HelloMsg hello;
    hello.node_name = "tester";
    hello.sku = "sim-zen2";
    conn.send(hello.encode());
    const auto reply = conn.recv(5.0);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, MessageType::kShutdown);
  });

  Connection server = listener.accept(5.0);
  const auto frame = server.recv(5.0);
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->type, MessageType::kHello);
  WireReader r(frame->payload);
  EXPECT_EQ(HelloMsg::decode(r).node_name, "tester");
  ShutdownMsg shutdown;
  server.send(shutdown.encode());
  client.join();
}

TEST(Transport, PeerDisconnectThrowsWireError) {
  Listener listener(0, /*loopback_only=*/true);
  std::thread client([port = listener.port()] {
    Connection conn = Connection::connect("127.0.0.1:" + std::to_string(port));
    // Close immediately without sending a frame.
  });
  Connection server = listener.accept(5.0);
  client.join();
  EXPECT_THROW(server.recv(5.0), WireError);
}

TEST(Transport, AcceptTimesOutWithClearError) {
  Listener listener(0, /*loopback_only=*/true);
  try {
    listener.accept(0.05);
    FAIL() << "expected a timeout error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("no agent connected"), std::string::npos);
  }
}

// ---- clock sync -------------------------------------------------------------

TEST(ClockSync, LoopbackOffsetIsTiny) {
  Listener listener(0, /*loopback_only=*/true);
  std::thread agent([port = listener.port()] {
    Connection conn = Connection::connect("127.0.0.1:" + std::to_string(port));
    // Answer probes until the coordinator side closes.
    for (;;) {
      std::optional<Frame> frame;
      try {
        frame = conn.recv(5.0);
      } catch (const WireError&) {
        return;
      }
      if (!frame || frame->type != MessageType::kSyncProbe) return;
      WireReader r(frame->payload);
      const SyncProbeMsg probe = SyncProbeMsg::decode(r);
      SyncReplyMsg reply;
      reply.seq = probe.seq;
      reply.t_coord_s = probe.t_coord_s;
      reply.t_agent_s = local_clock_s();
      conn.send(reply.encode());
    }
  });
  {
    Connection conn = listener.accept(5.0);
    const ClockSyncResult sync = run_clock_sync(conn, 8);
    EXPECT_EQ(sync.rounds, 8);
    EXPECT_GT(sync.rtt_s, 0.0);
    EXPECT_LT(sync.rtt_s, 0.1);
    // Same process, same steady clock: the estimated offset must be
    // bounded by the round trip.
    EXPECT_LT(std::abs(sync.offset_s), sync.rtt_s);
  }
  agent.join();
}

// ---- budget apportioner -----------------------------------------------------

TEST(Budget, AssignmentsSumToBudgetAndFollowAchieved) {
  control::BudgetApportioner budget(600.0, 2);
  EXPECT_DOUBLE_EQ(budget.initial_share_w(), 300.0);
  // Node 0 delivers more than node 1: its share grows proportionally.
  const double w0 = budget.on_report(0, 400.0);
  // total = 400 + 300 (node 1 assumed at initial share) = 700
  EXPECT_NEAR(w0, 400.0 * 600.0 / 700.0, 1e-9);
  const double w1 = budget.on_report(1, 200.0);
  EXPECT_NEAR(w1, 200.0 * 600.0 / 600.0, 1e-9);
  EXPECT_NEAR(budget.total_achieved_w(), 600.0, 1e-9);
}

TEST(Budget, AllIdleFleetFallsBackToEqualShares) {
  control::BudgetApportioner budget(500.0, 4);
  EXPECT_DOUBLE_EQ(budget.on_report(2, 0.0), 125.0);
}

TEST(Budget, ConvergenceJudgesTrailingWindow) {
  control::BudgetApportioner budget(500.0, 2);
  budget.begin_window();
  EXPECT_FALSE(budget.converged(0.02));  // no data yet
  // Ramp far from target, then settle on it: trailing window forgives the
  // ramp.
  for (int i = 0; i < 10; ++i) {
    budget.on_report(0, 100.0);
    budget.on_report(1, 100.0);
  }
  EXPECT_FALSE(budget.converged(0.02));
  for (int i = 0; i < 60; ++i) {
    budget.on_report(0, 251.0);
    budget.on_report(1, 250.0);
  }
  EXPECT_TRUE(budget.converged(0.02));
  EXPECT_NEAR(budget.trailing_total_w(), 501.0, 1.0);
  // A fresh window forgets the settled history.
  budget.begin_window();
  EXPECT_FALSE(budget.converged(0.02));
}

TEST(Budget, SetpointParsesClusterPower) {
  const control::Setpoint sp = control::Setpoint::parse("cluster-power=2000W,band=5");
  EXPECT_EQ(sp.variable, control::ControlVariable::kClusterPower);
  EXPECT_DOUBLE_EQ(sp.value, 2000.0);
  EXPECT_DOUBLE_EQ(sp.band, 0.05);
  EXPECT_DOUBLE_EQ(sp.interval_s, 0.5);  // cluster default cadence
  EXPECT_THROW(control::Setpoint::parse("cluster-power=0W"), ConfigError);
}

// ---- cluster bus ------------------------------------------------------------

ChannelMsg make_channel(std::uint32_t id, const std::string& name, const std::string& unit) {
  ChannelMsg msg;
  msg.channel_id = id;
  msg.name = name;
  msg.unit = unit;
  return msg;
}

PhaseBracketMsg make_bracket(bool begin, std::uint32_t index, const std::string& name,
                             double epoch_elapsed_s) {
  PhaseBracketMsg msg;
  msg.is_begin = begin ? 1 : 0;
  msg.phase_index = index;
  msg.phase_name = name;
  msg.duration_s = 10.0;
  msg.epoch_elapsed_s = epoch_elapsed_s;
  return msg;
}

SampleBatchMsg make_batch(std::uint32_t id, std::initializer_list<double> values) {
  SampleBatchMsg msg;
  msg.channel_id = id;
  double t = 0.0;
  for (double v : values) msg.samples.push_back(telemetry::Sample{t += 1.0, v});
  return msg;
}

/// Edge-summarized row the v2 protocol ships at phase end (mean is all the
/// merge tests check; the other statistics travel verbatim anyway).
NodeSummaryMsg make_summary(std::uint32_t phase_index, const std::string& name,
                            const std::string& unit, double mean) {
  NodeSummaryMsg msg;
  msg.phase_index = phase_index;
  msg.name = name;
  msg.unit = unit;
  msg.samples = 3;
  msg.mean = mean;
  return msg;
}

TEST(ClusterBusTest, MergesPerNodeRowsAndAggregates) {
  ClusterBus bus({"alpha", "beta"});
  for (std::size_t node = 0; node < 2; ++node) {
    bus.on_channel(node, make_channel(0, "sim-wall-power", "W"));
    bus.on_channel(node, make_channel(1, "sim-package-temp", "degC"));
  }
  bus.on_bracket(0, make_bracket(true, 0, "hold", 1.001));
  bus.on_bracket(1, make_bracket(true, 0, "hold", 1.004));
  bus.on_samples(0, make_batch(0, {100.0, 110.0, 120.0}));
  bus.on_samples(1, make_batch(0, {200.0, 210.0, 220.0}));
  bus.on_samples(0, make_batch(1, {50.0, 55.0, 60.0}));
  bus.on_samples(1, make_batch(1, {70.0, 65.0, 40.0}));
  // Per-node rows arrive pre-aggregated from the edge, before the end
  // bracket (the agent's RemoteSink sends them at phase end).
  bus.on_summary(0, make_summary(0, "sim-wall-power", "W", 110.0));
  bus.on_summary(1, make_summary(0, "sim-wall-power", "W", 210.0));
  bus.on_bracket(0, make_bracket(false, 0, "hold", 11.0));
  bus.on_bracket(1, make_bracket(false, 0, "hold", 11.0));
  bus.finish();

  const auto rows = bus.merged_rows();
  auto find = [&rows](const std::string& name, const std::string& node) {
    for (const ClusterBus::Row& row : rows)
      if (row.summary.name == name && row.node == node) return row.summary;
    ADD_FAILURE() << "missing row " << name << " / " << node;
    return metrics::Summary{};
  };
  EXPECT_NEAR(find("sim-wall-power", "alpha").mean, 110.0, 1e-9);
  EXPECT_NEAR(find("sim-wall-power", "beta").mean, 210.0, 1e-9);
  // Cluster power: per-index sums 300/320/340.
  const metrics::Summary power = find("cluster-power", "cluster");
  EXPECT_EQ(power.samples, 3u);
  EXPECT_NEAR(power.mean, 320.0, 1e-9);
  EXPECT_NEAR(power.max, 340.0, 1e-9);
  // Cluster temp: per-index maxes 70/65/60.
  const metrics::Summary temp = find("cluster-temp-max", "cluster");
  EXPECT_NEAR(temp.mean, 65.0, 1e-9);
  EXPECT_NEAR(temp.min, 60.0, 1e-9);

  ASSERT_EQ(bus.phase_sync().size(), 1u);
  EXPECT_EQ(bus.phase_sync()[0].name, "hold");
  EXPECT_NEAR(bus.phase_sync()[0].spread_s(), 0.003, 1e-9);
}

TEST(ClusterBusTest, NonParticipantDoesNotStallAggregates) {
  // Node beta has no power channel: cluster-power is alpha alone.
  ClusterBus bus({"alpha", "beta"});
  bus.on_channel(0, make_channel(0, "sim-wall-power", "W"));
  bus.on_channel(1, make_channel(0, "load-level", "fraction"));
  bus.on_bracket(0, make_bracket(true, 0, "p", 0.0));
  bus.on_bracket(1, make_bracket(true, 0, "p", 0.0));
  bus.on_samples(0, make_batch(0, {100.0, 120.0}));
  bus.on_samples(1, make_batch(0, {0.5, 0.5}));
  bus.on_bracket(0, make_bracket(false, 0, "p", 2.0));
  bus.on_bracket(1, make_bracket(false, 0, "p", 2.0));
  bus.finish();
  for (const ClusterBus::Row& row : bus.merged_rows())
    if (row.summary.name == "cluster-power") {
      EXPECT_NEAR(row.summary.mean, 110.0, 1e-9);
      return;
    }
  FAIL() << "cluster-power row missing";
}

TEST(ClusterBusTest, ChannelRegisteredMidPhaseStillAggregates) {
  // Host agents register sensor channels from inside the first phase (the
  // begin bracket is on the wire before the metric set spins up). The
  // stream must still aggregate that phase and must not leak its samples
  // into the next one.
  ClusterBus bus({"alpha"});
  bus.on_bracket(0, make_bracket(true, 0, "p1", 0.0));
  bus.on_channel(0, make_channel(0, "sysfs-powercap-rapl", "W"));
  bus.on_samples(0, make_batch(0, {100.0, 120.0}));
  bus.on_bracket(0, make_bracket(false, 0, "p1", 2.0));
  bus.on_bracket(0, make_bracket(true, 1, "p2", 3.0));
  bus.on_samples(0, make_batch(0, {200.0, 200.0}));
  bus.on_bracket(0, make_bracket(false, 1, "p2", 5.0));
  bus.finish();
  const auto rows = bus.merged_rows();
  double p1 = -1.0, p2 = -1.0;
  for (const ClusterBus::Row& row : rows) {
    if (row.summary.name != "cluster-power") continue;
    if (row.summary.phase == "p1") p1 = row.summary.mean;
    if (row.summary.phase == "p2") p2 = row.summary.mean;
    EXPECT_EQ(row.summary.samples, 2u);  // no cross-phase contamination
  }
  EXPECT_NEAR(p1, 110.0, 1e-9);
  EXPECT_NEAR(p2, 200.0, 1e-9);
}

TEST(ClusterBusTest, OutOfOrderBracketThrows) {
  ClusterBus bus({"alpha"});
  EXPECT_THROW(bus.on_bracket(0, make_bracket(true, 1, "p", 0.0)), WireError);
  EXPECT_THROW(bus.on_samples(0, make_batch(7, {1.0})), WireError);
}

// ---- per-node machine configs -----------------------------------------------

TEST(NodeConfigs, NamedSkusAreGenuinelyHeterogeneous) {
  // The loopback acceptance fleet mixes these two: they must model
  // different machines, or "heterogeneous SKUs" tests nothing.
  const sim::MachineConfig zen2 = sim::MachineConfig::named("zen2");
  const sim::MachineConfig haswell = sim::MachineConfig::named("haswell");
  EXPECT_NE(zen2.total_cores(), haswell.total_cores());
  EXPECT_NE(zen2.power.active_cycle_nj, haswell.power.active_cycle_nj);
  EXPECT_EQ(sim::MachineConfig::named("haswell-gpu").gpu.count, 4);
  EXPECT_THROW(sim::MachineConfig::named("epyc9754"), ConfigError);
}

// ---- loopback fleet (end to end) --------------------------------------------

std::string write_campaign(const char* path, const char* text) {
  std::ofstream out(path);
  out << text;
  return path;
}

/// Mean value of the merged-CSV row for (metric, phase, node).
double csv_mean(const std::string& output, const std::string& metric,
                const std::string& phase, const std::string& node) {
  std::istringstream lines(output);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind(metric + ",", 0) != 0) continue;
    if (line.find("," + phase + "," + node) == std::string::npos) continue;
    // metric,unit,samples,mean,...
    std::size_t pos = 0;
    for (int commas = 0; commas < 3; ++commas) pos = line.find(',', pos) + 1;
    return std::stod(line.substr(pos));
  }
  return -1.0;
}

TEST(LoopbackFleet, HeterogeneousBudgetCampaignConvergesInLockstep) {
  const std::string campaign = write_campaign("/tmp/fs2_cluster_accept.campaign",
                                              "phase name=ramp duration=12\n"
                                              "phase name=hold duration=16\n"
                                              "phase name=cool duration=12\n");
  firestarter::Config cfg;
  cfg.loopback_nodes = "zen2@1500,haswell@2000";
  cfg.coordinator = true;
  cfg.campaign_file = campaign;
  cfg.target_spec = "cluster-power=500W";
  cfg.require_convergence = true;
  cfg.log_level = "warn";
  std::ostringstream out;
  firestarter::Firestarter app(cfg, out);
  const int code = app.run();
  const std::string output = out.str();
  EXPECT_EQ(code, 0) << output;

  // Merged CSV: per-node and cluster-aggregate rows for every phase.
  for (const char* phase : {"ramp", "hold", "cool"}) {
    EXPECT_GT(csv_mean(output, "sim-wall-power", phase, "n0-zen2"), 0.0) << output;
    EXPECT_GT(csv_mean(output, "sim-wall-power", phase, "n1-haswell"), 0.0) << output;
    const double cluster = csv_mean(output, "cluster-power", phase, "cluster");
    // The global budget holds on every phase: the cluster sum within the
    // 2 % band of 500 W (plus a little slack for the whole-phase mean,
    // which includes the ramp-in the trailing-window verdict excludes).
    EXPECT_NEAR(cluster, 500.0, 0.04 * 500.0) << output;
    // The aggregate is consistent with its parts.
    const double parts = csv_mean(output, "sim-wall-power", phase, "n0-zen2") +
                         csv_mean(output, "sim-wall-power", phase, "n1-haswell");
    EXPECT_NEAR(cluster, parts, 0.02 * parts) << output;
  }

  // Lockstep: the run reports per-phase start spreads and none exceeded the
  // tolerance (which would both flag the line and fail the exit code).
  EXPECT_NE(output.find("start spread"), std::string::npos) << output;
  EXPECT_EQ(output.find("exceeds tolerance"), std::string::npos) << output;
  EXPECT_NE(output.find("cluster power"), std::string::npos) << output;
  EXPECT_EQ(output.find("NOT converged"), std::string::npos) << output;
}

TEST(LoopbackFleet, OpenLoopCampaignMergesWithoutBudget) {
  const std::string campaign = write_campaign("/tmp/fs2_cluster_open.campaign",
                                              "phase name=half duration=10 "
                                              "profile=constant:50\n");
  firestarter::Config cfg;
  cfg.loopback_nodes = "zen2@1500,haswell@2000";
  cfg.coordinator = true;
  cfg.campaign_file = campaign;
  cfg.log_level = "warn";
  std::ostringstream out;
  firestarter::Firestarter app(cfg, out);
  EXPECT_EQ(app.run(), 0) << out.str();
  const std::string output = out.str();
  // Both nodes ran the same 50 % schedule; the cluster row sums their power.
  EXPECT_NEAR(csv_mean(output, "load-level", "half", "n0-zen2"), 0.5, 1e-6) << output;
  EXPECT_NEAR(csv_mean(output, "load-level", "half", "n1-haswell"), 0.5, 1e-6) << output;
  const double parts = csv_mean(output, "sim-wall-power", "half", "n0-zen2") +
                       csv_mean(output, "sim-wall-power", "half", "n1-haswell");
  EXPECT_NEAR(csv_mean(output, "cluster-power", "half", "cluster"), parts, 0.02 * parts)
      << output;
}

TEST(LoopbackFleet, UnreachableBudgetFailsRequireConvergence) {
  const std::string campaign = write_campaign("/tmp/fs2_cluster_unreach.campaign",
                                              "phase name=hold duration=10\n");
  firestarter::Config cfg;
  cfg.loopback_nodes = "zen2@1500,haswell@2000";
  cfg.coordinator = true;
  cfg.campaign_file = campaign;
  // Both SKUs flat out cannot reach 5 kW.
  cfg.target_spec = "cluster-power=5000W";
  cfg.require_convergence = true;
  cfg.log_level = "error";
  std::ostringstream out;
  firestarter::Firestarter app(cfg, out);
  EXPECT_EQ(app.run(), 1) << out.str();
}

TEST(LoopbackFleet, SixtyFourNodeFleetMergesCorrectly) {
  // Fleet-scale stress: 64 heterogeneous in-process agents under a global
  // budget, driven by the shared event loop. Asserts the cluster
  // aggregates against their per-node parts and that the coordinator's
  // alignment queues stayed bounded (the run completing with converged
  // budget implies drained queues; kMaxLagSamples caps them throughout).
  const std::string campaign = write_campaign("/tmp/fs2_cluster_64.campaign",
                                              "phase name=hold duration=10\n");
  firestarter::Config cfg;
  cfg.loopback_nodes = "zen2@1500x32,haswell@2000x32";
  cfg.coordinator = true;
  cfg.campaign_file = campaign;
  cfg.target_spec = "cluster-power=16000W";  // 250 W/node, as the pair test
  cfg.require_convergence = true;
  cfg.log_level = "error";
  std::ostringstream out;
  firestarter::Firestarter app(cfg, out);
  const int code = app.run();
  const std::string output = out.str();
  EXPECT_EQ(code, 0) << output;

  // Every node contributed a power row, and the cluster-power aggregate is
  // consistent with the sum of its 64 parts.
  double parts = 0.0;
  for (int i = 0; i < 64; ++i) {
    const std::string node =
        std::string("n") + std::to_string(i) + (i < 32 ? "-zen2" : "-haswell");
    const double mean = csv_mean(output, "sim-wall-power", "hold", node);
    EXPECT_GT(mean, 0.0) << "missing power row for " << node;
    parts += mean;
  }
  const double cluster = csv_mean(output, "cluster-power", "hold", "cluster");
  EXPECT_NEAR(cluster, 16000.0, 0.04 * 16000.0) << output;
  EXPECT_NEAR(cluster, parts, 0.02 * parts) << output;

  // The hottest-package aggregate must sit at or above every node's own
  // mean temperature and below the hottest node's max.
  const double temp_max = csv_mean(output, "cluster-temp-max", "hold", "cluster");
  EXPECT_GT(temp_max, 0.0) << output;
  for (int i = 0; i < 64; i += 16) {
    const std::string node =
        std::string("n") + std::to_string(i) + (i < 32 ? "-zen2" : "-haswell");
    EXPECT_GE(temp_max + 1e-9, csv_mean(output, "sim-package-temp", "hold", node));
  }
}

TEST(MultiProcessFleet, RealAgentSessionsConvergeOverTcp) {
  // The production --agent path (run_agent -> AgentSession -> run_campaign's
  // session branches) must stay covered now that --loopback drives SimFleet
  // instead: this is the exact code real multi-machine deployments run,
  // exercised here as separate Firestarter instances over real TCP.
  const std::string campaign = write_campaign("/tmp/fs2_cluster_agents.campaign",
                                              "phase name=ramp duration=8\n"
                                              "phase name=hold duration=8\n");
  const std::uint16_t port = [] {
    Listener probe(0, /*loopback_only=*/true);  // freed on destruction
    return probe.port();
  }();

  firestarter::Config coord_cfg;
  coord_cfg.coordinator = true;
  coord_cfg.listen_port = port;
  coord_cfg.cluster_nodes = 2;
  coord_cfg.campaign_file = campaign;
  coord_cfg.target_spec = "cluster-power=500W";
  coord_cfg.require_convergence = true;
  coord_cfg.log_level = "error";
  std::ostringstream coord_out;
  int coord_code = -1;
  std::thread coordinator([&] {
    try {
      firestarter::Firestarter app(coord_cfg, coord_out);
      coord_code = app.run();
    } catch (const std::exception& e) {
      coord_out << "coordinator error: " << e.what() << "\n";
    }
  });

  auto run_agent = [port](firestarter::TargetSystem target, double freq_mhz,
                          const char* name, int* code) {
    firestarter::Config cfg;
    cfg.agent_endpoint = "127.0.0.1:" + std::to_string(port);
    cfg.target = target;
    cfg.sim_freq_mhz = freq_mhz;
    cfg.node_name = name;
    cfg.log_level = "error";
    try {
      std::ostringstream out;
      firestarter::Firestarter app(cfg, out);
      *code = app.run();
    } catch (const std::exception&) {
      *code = -2;
    }
  };
  int zen2_code = -1;
  int haswell_code = -1;
  std::thread zen2(run_agent, firestarter::TargetSystem::kSimZen2, 1500.0, "alpha",
                   &zen2_code);
  std::thread haswell(run_agent, firestarter::TargetSystem::kSimHaswell, 2000.0, "beta",
                      &haswell_code);
  zen2.join();
  haswell.join();
  coordinator.join();

  const std::string output = coord_out.str();
  EXPECT_EQ(coord_code, 0) << output;
  EXPECT_EQ(zen2_code, 0);
  EXPECT_EQ(haswell_code, 0);
  const double cluster = csv_mean(output, "cluster-power", "hold", "cluster");
  EXPECT_NEAR(cluster, 500.0, 0.04 * 500.0) << output;
  EXPECT_GT(csv_mean(output, "sim-wall-power", "ramp", "alpha"), 0.0) << output;
  EXPECT_GT(csv_mean(output, "sim-wall-power", "hold", "beta"), 0.0) << output;
}

TEST(LoopbackFleet, RejectsHostSpecs) {
  firestarter::Config cfg;
  cfg.loopback_nodes = "host,zen2";
  cfg.coordinator = true;
  cfg.campaign_file = write_campaign("/tmp/fs2_cluster_host.campaign",
                                     "phase name=p duration=5\n");
  std::ostringstream out;
  firestarter::Firestarter app(cfg, out);
  EXPECT_THROW(app.run(), ConfigError);
}

TEST(ClusterBusTest, LagQueuesStayBounded) {
  // Node alpha streams far ahead while beta stays silent: the per-node
  // alignment queue must cap at kMaxLagSamples (dropping oldest), never
  // grow with the skew.
  ClusterBus bus({"alpha", "beta"});
  bus.on_channel(0, make_channel(0, "sim-wall-power", "W"));
  bus.on_channel(1, make_channel(0, "sim-wall-power", "W"));
  bus.on_bracket(0, make_bracket(true, 0, "p", 0.0));
  bus.on_bracket(1, make_bracket(true, 0, "p", 0.0));
  SampleBatchMsg batch;
  batch.channel_id = 0;
  for (int i = 0; i < 1000; ++i)
    batch.samples.push_back(telemetry::Sample{i * 0.05, 100.0});
  const std::size_t rounds = 3 * ClusterBus::kMaxLagSamples / 1000;
  for (std::size_t r = 0; r <= rounds; ++r) bus.on_samples(0, batch);
  EXPECT_LE(bus.queued_samples(), ClusterBus::kMaxLagSamples);
  EXPECT_GT(bus.queued_samples(), 0u);
}

TEST(RemoteSinkTest, EdgeSummarizesAndShipsOnlyAggregateSamples) {
  Listener listener(0, /*loopback_only=*/true);
  Connection agent = Connection::connect(
      "127.0.0.1:" + std::to_string(listener.port()));
  Connection coordinator = listener.accept(/*timeout_s=*/5.0);

  telemetry::TelemetryBus bus;
  RemoteSink sink(&agent, std::chrono::steady_clock::now());
  bus.attach(&sink);
  const telemetry::ChannelId power = bus.channel("sim-wall-power", "W");
  const telemetry::ChannelId load = bus.channel("load-level", "fraction");
  EXPECT_TRUE(sink.ships_samples(power));
  EXPECT_FALSE(sink.ships_samples(load));

  bus.begin_phase("hold", 10.0, 0.0, 0.0);
  for (int i = 0; i < 50; ++i) {
    bus.publish(power, i * 0.1, 200.0 + i);
    bus.publish(load, i * 0.1, 0.5);
  }
  bus.end_phase();
  bus.finish();

  // Expected wire order: channel registrations, begin bracket, the power
  // samples, then the edge summary rows (power AND load), then the end
  // bracket — never a raw load-level batch.
  std::size_t sample_batches = 0;
  std::vector<NodeSummaryMsg> summaries;
  bool end_bracket_seen = false;
  for (int i = 0; i < 20; ++i) {
    const auto frame = coordinator.recv(/*timeout_s=*/2.0);
    ASSERT_TRUE(frame.has_value());
    WireReader reader(frame->payload);
    if (frame->type == MessageType::kSampleBatch) {
      const SampleBatchMsg batch = SampleBatchMsg::decode(reader);
      EXPECT_EQ(batch.channel_id, static_cast<std::uint32_t>(power));
      EXPECT_FALSE(end_bracket_seen);
      sample_batches += batch.samples.size();
    } else if (frame->type == MessageType::kNodeSummary) {
      EXPECT_FALSE(end_bracket_seen);  // rows precede the barrier signal
      summaries.push_back(NodeSummaryMsg::decode(reader));
    } else if (frame->type == MessageType::kPhaseBracket) {
      const PhaseBracketMsg bracket = PhaseBracketMsg::decode(reader);
      if (!bracket.is_begin) {
        end_bracket_seen = true;
        break;
      }
    }
  }
  EXPECT_TRUE(end_bracket_seen);
  EXPECT_EQ(sample_batches, 50u);
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_EQ(summaries[0].name, "sim-wall-power");
  EXPECT_NEAR(summaries[0].mean, 224.5, 1e-9);  // mean of 200..249
  EXPECT_EQ(summaries[1].name, "load-level");
  EXPECT_NEAR(summaries[1].mean, 0.5, 1e-12);
}

TEST(RemoteSinkTest, BatchThresholdAdaptsToSampleRate) {
  Listener listener(0, /*loopback_only=*/true);
  Connection agent = Connection::connect(
      "127.0.0.1:" + std::to_string(listener.port()));
  Connection coordinator = listener.accept(/*timeout_s=*/5.0);

  std::atomic<bool> done{false};
  std::thread drain([&] {
    Frame frame;
    while (!done.load())
      if (!coordinator.recv_into(frame, /*timeout_s=*/0.05)) continue;
  });

  telemetry::TelemetryBus bus;
  RemoteSink sink(&agent, std::chrono::steady_clock::now());
  bus.attach(&sink);
  const telemetry::ChannelId power = bus.channel("sim-wall-power", "W");
  EXPECT_EQ(sink.batch_threshold(power), RemoteSink::kBatchSamples);

  bus.begin_phase("p", 1000.0, 0.0, 0.0);
  // 500 Sa/s: after the first full flush the threshold re-targets
  // kTargetBatchSeconds' worth of stream (1000 samples).
  for (int i = 0; i < 300; ++i) bus.publish(power, i / 500.0, 100.0);
  EXPECT_EQ(sink.batch_threshold(power),
            static_cast<std::size_t>(500.0 * RemoteSink::kTargetBatchSeconds));
  // 2 Sa/s: a slow channel adapts down to the floor instead of buffering
  // minutes of latency.
  const telemetry::ChannelId slow = bus.channel("sysfs-powercap-rapl", "W");
  for (int i = 0; i < 1100; ++i) bus.publish(slow, i / 2.0, 50.0);
  EXPECT_EQ(sink.batch_threshold(slow), RemoteSink::kMinBatchSamples);
  bus.finish();
  done.store(true);
  drain.join();
}

TEST(Coordinator, RequiresCampaignAndNodes) {
  firestarter::Config cfg;
  cfg.coordinator = true;
  std::ostringstream out;
  {
    firestarter::Firestarter app(cfg, out);
    EXPECT_THROW(app.run(), ConfigError);  // no campaign
  }
  cfg.campaign_file = write_campaign("/tmp/fs2_cluster_nonode.campaign",
                                     "phase name=p duration=5\n");
  {
    firestarter::Firestarter app(cfg, out);
    EXPECT_THROW(app.run(), ConfigError);  // no --nodes / --loopback
  }
}

// ---- observability ----------------------------------------------------------

TEST(ClusterBusTest, MergedRowsIncludePhaseBeginSpread) {
  const std::string campaign = write_campaign("/tmp/fs2_cluster_spread.campaign",
                                              "phase name=solo duration=10 "
                                              "profile=constant:60\n");
  firestarter::Config cfg;
  cfg.loopback_nodes = "zen2@1500,haswell@2000";
  cfg.coordinator = true;
  cfg.campaign_file = campaign;
  cfg.log_level = "warn";
  std::ostringstream out;
  firestarter::Firestarter app(cfg, out);
  EXPECT_EQ(app.run(), 0) << out.str();
  const std::string output = out.str();
  // The merged CSV carries one spread row per phase on the cluster
  // pseudo-node: mean = spread, samples = participating nodes.
  const double spread = csv_mean(output, "phase-begin-spread", "solo", "cluster");
  EXPECT_GE(spread, 0.0) << output;
  EXPECT_LT(spread, 0.25) << output;  // loopback agents start nearly together
  EXPECT_NE(output.find("phase-begin-spread,s,2,"), std::string::npos) << output;
}

TEST(LoopbackFleet, SyncToleranceFailureNamesOffendingNodes) {
  const std::string campaign = write_campaign("/tmp/fs2_cluster_offender.campaign",
                                              "phase name=tight duration=10 "
                                              "profile=constant:50\n");
  firestarter::Config cfg;
  cfg.loopback_nodes = "zen2@1500,haswell@2000";
  cfg.coordinator = true;
  cfg.campaign_file = campaign;
  // No two nodes can begin within a nanosecond of each other; the lockstep
  // verdict must fail and say WHICH node straggled behind which.
  cfg.sync_tolerance_s = 1e-9;
  cfg.require_convergence = true;
  cfg.log_level = "error";
  std::ostringstream out;
  firestarter::Firestarter app(cfg, out);
  EXPECT_EQ(app.run(), 1) << out.str();
  const std::string output = out.str();
  EXPECT_NE(output.find("phase 'tight'"), std::string::npos) << output;
  EXPECT_NE(output.find("exceeds tolerance"), std::string::npos) << output;
  const std::size_t offender = output.find("— node ");
  ASSERT_NE(offender, std::string::npos) << output;
  EXPECT_NE(output.find("ms after node ", offender), std::string::npos) << output;
  // Both named nodes are real fleet members.
  const bool names_nodes = output.find("n0-zen2", offender) != std::string::npos ||
                           output.find("n1-haswell", offender) != std::string::npos;
  EXPECT_TRUE(names_nodes) << output;
}

TEST(LoopbackFleet, TraceOutExportsMergedFleetTimeline) {
  const std::string campaign = write_campaign("/tmp/fs2_cluster_trace.campaign",
                                              "phase name=ramp duration=8\n"
                                              "phase name=cool duration=6\n");
  const std::string trace_path = "/tmp/fs2_cluster_trace.json";
  std::remove(trace_path.c_str());
  firestarter::Config cfg;
  cfg.loopback_nodes = "zen2@1500,haswell@2000";
  cfg.coordinator = true;
  cfg.campaign_file = campaign;
  cfg.target_spec = "cluster-power=500W";
  cfg.trace_out = trace_path;
  cfg.log_level = "warn";
  std::ostringstream out;
  firestarter::Firestarter app(cfg, out);
  EXPECT_EQ(app.run(), 0) << out.str();
  EXPECT_NE(out.str().find("fleet trace written to"), std::string::npos) << out.str();
  trace::Tracer::reset();  // do not leak an enabled tracer into other tests

  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  // Every node became a named process on the merged timeline...
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"coordinator\""), std::string::npos);
  EXPECT_NE(json.find("\"n0-zen2\""), std::string::npos);
  EXPECT_NE(json.find("\"n1-haswell\""), std::string::npos);
  // ...with per-node phase spans, agent waits, and coordinator-side spans.
  EXPECT_NE(json.find("\"phase:ramp\""), std::string::npos);
  EXPECT_NE(json.find("\"phase:cool\""), std::string::npos);
  EXPECT_NE(json.find("\"cluster.phase_barrier\""), std::string::npos);
  EXPECT_NE(json.find("\"cluster.bus.drain\""), std::string::npos);
  std::remove(trace_path.c_str());
}

TEST(Coordinator, ServesStatusProbesDuringAcceptAndMidRun) {
  Coordinator::Options options;
  options.port = 0;
  options.loopback_only = true;
  options.nodes = 1;
  options.campaign_text = "phase name=p duration=6 profile=constant:50\n";
  options.phase_count = 1;
  // A generous epoch delay keeps the coordinator in its event loop (agents
  // parked at the epoch) long enough for the mid-run probes to land.
  options.start_delay_s = 1.5;
  Coordinator coordinator(options);
  const std::string endpoint = "127.0.0.1:" + std::to_string(coordinator.port());
  Coordinator::Result result;
  std::ostringstream out;
  std::thread run_thread([&] { result = coordinator.run(out); });

  // Probe 1: accept window, no agents yet — answered without consuming the
  // fleet slot.
  {
    Connection probe = Connection::connect(endpoint, /*retry_for_s=*/5.0);
    probe.send(StatusRequestMsg{}.encode());
    const auto frame = probe.recv(/*timeout_s=*/5.0);
    ASSERT_TRUE(frame.has_value());
    ASSERT_EQ(frame->type, MessageType::kStatusReply);
    WireReader reader(frame->payload);
    const StatusReplyMsg reply = StatusReplyMsg::decode(reader);
    EXPECT_EQ(reply.accepting, 1);
    EXPECT_EQ(reply.nodes_expected, 1u);
    EXPECT_EQ(reply.phase_count, 1u);
    EXPECT_TRUE(reply.nodes.empty());
  }

  firestarter::Config cfg;
  cfg.log_level = "error";
  const auto specs = firestarter::parse_loopback_specs("zen2@1500");
  std::unique_ptr<firestarter::SimFleet> fleet;
  std::thread fleet_thread([&, port = coordinator.port()] {
    fleet = std::make_unique<firestarter::SimFleet>(cfg, specs, port);
    fleet->run();
  });

  // Probe repeatedly until the campaign is live (accepting == 0 with the
  // node enrolled); the epoch delay guarantees a wide window.
  bool saw_running = false;
  for (int attempt = 0; attempt < 200 && !saw_running; ++attempt) {
    try {
      Connection probe = Connection::connect(endpoint, /*retry_for_s=*/0.2);
      probe.send(StatusRequestMsg{}.encode());
      const auto frame = probe.recv(/*timeout_s=*/2.0);
      if (!frame || frame->type != MessageType::kStatusReply) break;
      WireReader reader(frame->payload);
      const StatusReplyMsg reply = StatusReplyMsg::decode(reader);
      if (reply.accepting == 0 && !reply.nodes.empty()) {
        saw_running = true;
        EXPECT_EQ(reply.nodes[0].name, "n0-zen2");
        EXPECT_EQ(reply.nodes[0].connected, 1);
        EXPECT_LE(reply.nodes[0].phases_ended, reply.nodes[0].phases_begun);
      }
    } catch (const Error&) {
      break;  // listener gone: the run finished before we caught it mid-flight
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  run_thread.join();
  fleet_thread.join();
  EXPECT_TRUE(saw_running);
  ASSERT_TRUE(fleet != nullptr);
  EXPECT_TRUE(fleet->all_ok());
}

}  // namespace
