// Tests for the closed-loop control subsystem: the PID controller
// (clamping, anti-windup, derivative filtering), the Setpoint spec parser,
// the ControlledProfile actuator, the TraceRecorder (record -> replay), and
// controller convergence/stability against the simulator's PowerPlant in
// deterministic virtual time.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "control/controlled_profile.hpp"
#include "control/feedback_loop.hpp"
#include "control/pid.hpp"
#include "control/setpoint.hpp"
#include "sched/trace_recorder.hpp"
#include "sim/machine_config.hpp"
#include "sim/plant.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace fs2::control {
namespace {

namespace fs = std::filesystem;

// ---- PidController ----------------------------------------------------------

PidConfig p_only(double kp) {
  PidConfig cfg;
  cfg.gains = PidGains{kp, 0.0, 0.0};
  return cfg;
}

TEST(PidController, ProportionalActionTracksErrorSign) {
  PidController pid(p_only(0.5));
  EXPECT_DOUBLE_EQ(pid.update(1.0, 0.5, 0.1), 0.25);   // positive error pushes up
  EXPECT_DOUBLE_EQ(pid.update(1.0, 1.5, 0.1), 0.0);    // negative error clamps at floor
}

TEST(PidController, OutputClampsToConfiguredRange) {
  PidController pid(p_only(10.0));
  EXPECT_DOUBLE_EQ(pid.update(1.0, 0.0, 0.1), 1.0);
  EXPECT_TRUE(pid.saturated());
  EXPECT_DOUBLE_EQ(pid.update(0.0, 1.0, 0.1), 0.0);
  EXPECT_TRUE(pid.saturated());
  pid.update(0.5, 0.49, 0.1);
  EXPECT_FALSE(pid.saturated());
}

TEST(PidController, IntegralEliminatesSteadyStateOffset) {
  PidConfig cfg;
  cfg.gains = PidGains{0.0, 1.0, 0.0};
  PidController pid(cfg);
  // Constant error of 0.2 integrates up by ki * e * dt per step.
  double out = 0.0;
  for (int i = 0; i < 10; ++i) out = pid.update(0.7, 0.5, 0.1);
  EXPECT_NEAR(out, 10 * 1.0 * 0.2 * 0.1, 1e-12);
}

TEST(PidController, AntiWindupBoundsIntegralUnderSaturation) {
  PidConfig cfg;
  cfg.gains = PidGains{0.5, 2.0, 0.0};
  PidController pid(cfg);
  // Unreachable setpoint: hammer a huge positive error for a long time.
  for (int i = 0; i < 1000; ++i) pid.update(10.0, 0.0, 0.25);
  EXPECT_LE(pid.integral(), cfg.out_max + 1e-9);  // did not wind past the actuator
  // Recovery: with the setpoint back in range the output leaves the rail
  // within a couple of ticks instead of unwinding 1000 ticks of windup.
  double out = 1.0;
  int ticks = 0;
  while (out >= 1.0 && ticks < 5) {
    out = pid.update(0.2, 0.8, 0.25);
    ++ticks;
  }
  EXPECT_LT(ticks, 5);
  EXPECT_LT(out, 1.0);
}

TEST(PidController, ResetGivesBumplessStartFromBias) {
  PidConfig cfg;
  cfg.gains = PidGains{0.5, 1.0, 0.0};
  PidController pid(cfg);
  pid.reset(0.4);
  // Zero error: output equals the preloaded bias exactly.
  EXPECT_DOUBLE_EQ(pid.update(1.0, 1.0, 0.1), 0.4);
}

TEST(PidController, DerivativeFilterSmoothsMeasurementSteps) {
  PidConfig raw_cfg;
  raw_cfg.gains = PidGains{0.0, 0.0, 1.0};
  PidConfig filt_cfg = raw_cfg;
  filt_cfg.derivative_tau_s = 1.0;
  PidController raw(raw_cfg), filtered(filt_cfg);
  raw.update(0.0, 0.0, 0.1);
  filtered.update(0.0, 0.0, 0.1);
  // A measurement jump produces a (negative) derivative kick; the filtered
  // controller's is a fraction of the raw one.
  const double raw_out = raw.update(0.0, -0.5, 0.1);
  const double filt_out = filtered.update(0.0, -0.5, 0.1);
  EXPECT_GT(raw_out, 0.0);
  EXPECT_GT(filt_out, 0.0);
  EXPECT_LT(filt_out, 0.5 * raw_out);
}

TEST(PidController, ValidatesConfigAndDt) {
  PidConfig bad;
  bad.out_min = 1.0;
  bad.out_max = 0.0;
  EXPECT_THROW(PidController{bad}, ConfigError);
  PidController pid(p_only(1.0));
  EXPECT_THROW(pid.update(1.0, 0.0, 0.0), Error);
  EXPECT_THROW(pid.update(1.0, 0.0, -1.0), Error);
}

// ---- Setpoint parser --------------------------------------------------------

TEST(Setpoint, ParsesPowerWithDefaults) {
  const Setpoint sp = Setpoint::parse("power=150W");
  EXPECT_EQ(sp.variable, ControlVariable::kPower);
  EXPECT_DOUBLE_EQ(sp.value, 150.0);
  EXPECT_DOUBLE_EQ(sp.interval_s, 0.25);
  EXPECT_DOUBLE_EQ(sp.band, 0.02);
  EXPECT_FALSE(sp.kp || sp.ki || sp.kd || sp.scale);
}

TEST(Setpoint, ParsesTemperatureAndAliases) {
  EXPECT_EQ(Setpoint::parse("temp=85C").variable, ControlVariable::kTemperature);
  EXPECT_DOUBLE_EQ(Setpoint::parse("temp=85C").value, 85.0);
  EXPECT_DOUBLE_EQ(Setpoint::parse("temperature=72.5").value, 72.5);
  EXPECT_DOUBLE_EQ(Setpoint::parse("power=120.5w").value, 120.5);  // unit optional, any case
  EXPECT_DOUBLE_EQ(Setpoint::parse("power=120.5").value, 120.5);
}

TEST(Setpoint, ParsesTuningOverrides) {
  const Setpoint sp = Setpoint::parse("power=150W,kp=0.4,ki=1.5,kd=0.1,interval=0.5,band=5,scale=80");
  EXPECT_DOUBLE_EQ(*sp.kp, 0.4);
  EXPECT_DOUBLE_EQ(*sp.ki, 1.5);
  EXPECT_DOUBLE_EQ(*sp.kd, 0.1);
  EXPECT_DOUBLE_EQ(sp.interval_s, 0.5);
  EXPECT_DOUBLE_EQ(sp.band, 0.05);
  EXPECT_DOUBLE_EQ(*sp.scale, 80.0);
}

TEST(Setpoint, RejectsMalformedSpecs) {
  EXPECT_THROW(Setpoint::parse(""), ConfigError);
  EXPECT_THROW(Setpoint::parse("150W"), ConfigError);            // no key=value
  EXPECT_THROW(Setpoint::parse("kp=1"), ConfigError);            // variable must lead
  EXPECT_THROW(Setpoint::parse("watts=150"), ConfigError);       // unknown variable
  EXPECT_THROW(Setpoint::parse("power=abc"), ConfigError);
  EXPECT_THROW(Setpoint::parse("power=0"), ConfigError);
  EXPECT_THROW(Setpoint::parse("power=-50W"), ConfigError);
  EXPECT_THROW(Setpoint::parse("temp=200C"), ConfigError);       // outside (0, 150]
  EXPECT_THROW(Setpoint::parse("power=150W,interval=0"), ConfigError);
  EXPECT_THROW(Setpoint::parse("power=150W,band=0"), ConfigError);
  EXPECT_THROW(Setpoint::parse("power=150W,band=60"), ConfigError);
  EXPECT_THROW(Setpoint::parse("power=150W,scale=-1"), ConfigError);
  EXPECT_THROW(Setpoint::parse("power=150W,power=100W"), ConfigError);  // duplicate
  EXPECT_THROW(Setpoint::parse("power=150W,bogus=1"), ConfigError);
  EXPECT_THROW(Setpoint::parse("power=150W,kp="), ConfigError);   // empty value
  EXPECT_THROW(Setpoint::parse("power=150W,kp=nan"), ConfigError);  // would poison the loop
  EXPECT_THROW(Setpoint::parse("power=150W,ki=-2"), ConfigError);   // inverted feedback
  EXPECT_THROW(Setpoint::parse("power=150W,kd=inf"), ConfigError);
  EXPECT_THROW(Setpoint::parse("power=150W,scale=inf"), ConfigError);  // would zero all errors
}

TEST(Setpoint, ValidateDurationRequiresTwoTicks) {
  // One tick cannot produce a convergence verdict, so the minimum is two
  // intervals.
  const Setpoint sp = Setpoint::parse("power=150W,interval=0.5");
  EXPECT_NO_THROW(sp.validate_duration(1.0, "closed-loop run"));
  EXPECT_THROW(sp.validate_duration(0.9, "closed-loop run"), ConfigError);
  EXPECT_THROW(sp.validate_duration(0.4, "closed-loop run"), ConfigError);
}

// ---- ControlledProfile ------------------------------------------------------

TEST(ControlledProfile, ReturnsCommandedLevelRegardlessOfTime) {
  ControlledProfile profile(0.3);
  EXPECT_DOUBLE_EQ(profile.load_at(0.0), 0.3);
  EXPECT_DOUBLE_EQ(profile.load_at(1234.5), 0.3);
  profile.set_level(0.8);
  EXPECT_DOUBLE_EQ(profile.load_at(0.0), 0.8);
  EXPECT_TRUE(profile.live());
  EXPECT_FALSE(profile.constant());
  EXPECT_STREQ(profile.kind(), "controlled");
}

TEST(ControlledProfile, ClampsLevels) {
  ControlledProfile profile(2.0);
  EXPECT_DOUBLE_EQ(profile.level(), 1.0);
  profile.set_level(-0.5);
  EXPECT_DOUBLE_EQ(profile.level(), 0.0);
}

// ---- FeedbackLoop against the sim plant -------------------------------------

sim::Simulator zen2_sim() { return sim::Simulator(sim::MachineConfig::zen2_epyc7502_2s()); }

sim::WorkloadPoint full_load_point(double power_w) {
  sim::WorkloadPoint point;
  point.power_w = power_w;
  point.ipc_per_core = 2.0;
  return point;
}

/// Run a closed loop against the plant for `duration_s` of virtual time and
/// return the loop for inspection.
std::unique_ptr<FeedbackLoop> run_loop(const Setpoint& sp, double duration_s,
                                       double initial_level, sim::PowerPlant* plant) {
  auto profile = std::make_shared<ControlledProfile>(initial_level);
  const double scale = sp.variable == ControlVariable::kPower
                           ? plant->power_span_w()
                           : plant->temp_span_c();
  auto loop = std::make_unique<FeedbackLoop>(sp, profile, scale, initial_level);
  const double dt = sp.interval_s;
  while (plant->state().time_s + dt <= duration_s + 1e-9) {
    const sim::PowerPlant::State& st = plant->step(profile->level(), dt);
    loop->tick(st.time_s,
               sp.variable == ControlVariable::kPower ? st.power_w : st.temp_c);
  }
  return loop;
}

double trailing_stddev(const FeedbackLoop& loop, double window_s) {
  const auto& ticks = loop.telemetry();
  const double cutoff = ticks.back().time_s - window_s;
  double sum = 0.0, sq = 0.0;
  std::size_t n = 0;
  for (const ControlTick& tick : ticks) {
    if (tick.time_s < cutoff) continue;
    sum += tick.measurement;
    sq += tick.measurement * tick.measurement;
    ++n;
  }
  const double mean = sum / static_cast<double>(n);
  return std::sqrt(std::max(sq / static_cast<double>(n) - mean * mean, 0.0));
}

TEST(FeedbackLoop, PowerStepConvergesWithinBand) {
  const sim::Simulator sim = zen2_sim();
  sim::PowerPlant plant(sim, full_load_point(420.0), /*seed=*/7);
  const Setpoint sp = Setpoint::parse("power=250W");
  // Cold start from idle with no feed-forward: the integrator must find the
  // level on its own within 30 virtual seconds.
  const auto loop = run_loop(sp, 30.0, 0.0, &plant);
  EXPECT_TRUE(loop->converged(7.5));
  EXPECT_NEAR(loop->trailing_mean(7.5), 250.0, 0.02 * 250.0);
}

TEST(FeedbackLoop, PowerLoopShowsNoSustainedOscillation) {
  const sim::Simulator sim = zen2_sim();
  sim::PowerPlant plant(sim, full_load_point(420.0), /*seed=*/11);
  const auto loop = run_loop(Setpoint::parse("power=300W"), 40.0, 0.0, &plant);
  // Trailing half: only meter noise (0.4 % of ~300 W) remains, no limit
  // cycle. 1 % of the setpoint is a comfortable ceiling for "no oscillation".
  EXPECT_TRUE(loop->converged(10.0));
  EXPECT_LT(trailing_stddev(*loop, 20.0), 0.01 * 300.0);
}

TEST(FeedbackLoop, DeterministicAcrossRuns) {
  const sim::Simulator sim = zen2_sim();
  sim::PowerPlant plant_a(sim, full_load_point(420.0), /*seed=*/5);
  sim::PowerPlant plant_b(sim, full_load_point(420.0), /*seed=*/5);
  const Setpoint sp = Setpoint::parse("power=200W");
  const auto loop_a = run_loop(sp, 10.0, 0.0, &plant_a);
  const auto loop_b = run_loop(sp, 10.0, 0.0, &plant_b);
  ASSERT_EQ(loop_a->telemetry().size(), loop_b->telemetry().size());
  for (std::size_t i = 0; i < loop_a->telemetry().size(); ++i) {
    EXPECT_DOUBLE_EQ(loop_a->telemetry()[i].measurement,
                     loop_b->telemetry()[i].measurement);
    EXPECT_DOUBLE_EQ(loop_a->telemetry()[i].output, loop_b->telemetry()[i].output);
  }
}

TEST(FeedbackLoop, UnreachableSetpointSaturatesWithoutWindup) {
  const sim::Simulator sim = zen2_sim();
  sim::PowerPlant plant(sim, full_load_point(420.0), /*seed=*/3);
  const auto loop = run_loop(Setpoint::parse("power=2000W"), 30.0, 0.0, &plant);
  EXPECT_FALSE(loop->converged(7.5));
  // Saturated flat out at the rail...
  EXPECT_DOUBLE_EQ(loop->telemetry().back().output, 1.0);
  // ...delivering full-load power, and the achieved plateau reports the
  // plant's ceiling, not a wound-up fantasy.
  EXPECT_NEAR(loop->trailing_mean(7.5), 420.0, 0.05 * 420.0);
}

TEST(FeedbackLoop, LateRetuneDefersToThePreviousTarget) {
  // A coordinator reapportioning the budget when a node rejoins can step the
  // share moments before the phase-end verdict. The verdict must fall back
  // to the target the loop actually had a window to hold, not condemn a
  // settled loop for a step it was just handed.
  const sim::Simulator sim = zen2_sim();
  sim::PowerPlant plant(sim, full_load_point(420.0), /*seed=*/17);
  const Setpoint sp = Setpoint::parse("power=333W");
  auto profile = std::make_shared<ControlledProfile>(0.0);
  FeedbackLoop loop(sp, profile, plant.power_span_w(), 0.0);
  const double dt = sp.interval_s;
  while (plant.state().time_s + dt <= 30.0 + 1e-9) {
    const auto& st = plant.step(profile->level(), dt);
    loop.tick(st.time_s, st.power_w);
  }
  ASSERT_TRUE(loop.converged(7.5));
  loop.set_target(250.0);  // material step, two ticks before the verdict
  for (int i = 0; i < 2; ++i) {
    const auto& st = plant.step(profile->level(), dt);
    loop.tick(st.time_s, st.power_w);
  }
  EXPECT_TRUE(loop.converged(7.5));
}

TEST(FeedbackLoop, LateRetuneDoesNotForgiveAnUnsettledLoop) {
  // The fallback only reaches targets the loop tracked: if the previous
  // target had a full window and the loop still sat off-band, a fresh
  // retune must not launder the failure into a pass.
  const sim::Simulator sim = zen2_sim();
  sim::PowerPlant plant(sim, full_load_point(420.0), /*seed=*/19);
  const Setpoint sp = Setpoint::parse("power=2000W");  // unreachable
  auto profile = std::make_shared<ControlledProfile>(0.0);
  FeedbackLoop loop(sp, profile, plant.power_span_w(), 0.0);
  const double dt = sp.interval_s;
  while (plant.state().time_s + dt <= 30.0 + 1e-9) {
    const auto& st = plant.step(profile->level(), dt);
    loop.tick(st.time_s, st.power_w);
  }
  ASSERT_FALSE(loop.converged(7.5));
  loop.set_target(250.0);
  for (int i = 0; i < 2; ++i) {
    const auto& st = plant.step(profile->level(), dt);
    loop.tick(st.time_s, st.power_w);
  }
  EXPECT_FALSE(loop.converged(7.5));
}

TEST(FeedbackLoop, RecoversQuicklyAfterUnreachableEpisode) {
  // Drive the same PID + plant by hand: a long unreachable episode must not
  // leave windup that delays the drop to a reachable setpoint.
  const sim::Simulator sim = zen2_sim();
  sim::PowerPlant plant(sim, full_load_point(420.0), /*seed=*/9);
  auto profile = std::make_shared<ControlledProfile>(0.0);
  const Setpoint high = Setpoint::parse("power=2000W");
  const Setpoint low = Setpoint::parse("power=200W");
  FeedbackLoop loop_high(high, profile, plant.power_span_w(), 0.0);
  for (int i = 0; i < 240; ++i) {  // 60 s pinned at the rail
    const auto& st = plant.step(profile->level(), 0.25);
    loop_high.tick(st.time_s, st.power_w);
  }
  FeedbackLoop loop_low(low, profile, plant.power_span_w(), profile->level());
  double settle_time = 0.0;
  for (int i = 0; i < 120; ++i) {
    const auto& st = plant.step(profile->level(), 0.25);
    loop_low.tick(st.time_s - 60.0, st.power_w);
    if (settle_time == 0.0 && std::abs(st.power_w - 200.0) <= 0.02 * 200.0)
      settle_time = st.time_s - 60.0;
  }
  EXPECT_GT(settle_time, 0.0);
  EXPECT_LE(settle_time, 5.0);  // seconds, not the 60 s the windup lasted
}

TEST(FeedbackLoop, TemperatureStepConvergesThroughThermalLag) {
  const sim::Simulator sim = zen2_sim();
  sim::PowerPlant plant(sim, full_load_point(420.0), /*seed=*/13);
  const auto loop = run_loop(Setpoint::parse("temp=60C"), 120.0, 0.0, &plant);
  EXPECT_TRUE(loop->converged(30.0));
  EXPECT_NEAR(loop->trailing_mean(30.0), 60.0, 0.02 * 60.0);
  EXPECT_LT(trailing_stddev(*loop, 30.0), 1.5);  // degC; no limit cycle
}

TEST(FeedbackLoop, DueRespectsTickInterval) {
  auto profile = std::make_shared<ControlledProfile>(0.5);
  FeedbackLoop loop(Setpoint::parse("power=100W,interval=0.5"), profile, 100.0, 0.5);
  EXPECT_TRUE(loop.due(0.0));  // never ticked yet
  loop.tick(0.0, 50.0);
  EXPECT_FALSE(loop.due(0.25));
  EXPECT_TRUE(loop.due(0.5));
  EXPECT_THROW(loop.tick(0.0, 50.0), Error);  // non-increasing tick time
}

TEST(FeedbackLoop, ConvergedNeedsTelemetry) {
  auto profile = std::make_shared<ControlledProfile>(0.5);
  FeedbackLoop loop(Setpoint::parse("power=100W"), profile, 100.0, 0.5);
  EXPECT_FALSE(loop.converged(10.0));
  EXPECT_DOUBLE_EQ(loop.trailing_mean(10.0), 0.0);
}

// ---- PowerPlant -------------------------------------------------------------

TEST(PowerPlant, IdleAtZeroLevelFullPowerAtOne) {
  const sim::Simulator sim = zen2_sim();
  sim::PowerPlant plant(sim, full_load_point(420.0), /*seed=*/1, /*warm_start_s=*/1e6,
                        /*noise=*/false);
  const auto& idle = plant.step(0.0, 1.0);
  EXPECT_NEAR(idle.power_w, plant.idle_power_w(), 1e-9);
  const auto& full = plant.step(1.0, 1.0);
  EXPECT_NEAR(full.power_w, 420.0, 1e-6);  // fully warm: no leakage deficit
  EXPECT_GT(plant.power_span_w(), 200.0);
  EXPECT_GT(plant.temp_span_c(), 10.0);
}

TEST(PowerPlant, TemperatureLagsWithFirstOrderDynamics) {
  const sim::Simulator sim = zen2_sim();
  sim::PowerPlant plant(sim, full_load_point(420.0), /*seed=*/1, 0.0, /*noise=*/false);
  const double t0 = plant.state().temp_c;
  plant.step(1.0, 1.0);
  const double after_1s = plant.state().temp_c;
  const double target = plant.steady_temp_c(420.0);
  EXPECT_GT(after_1s, t0);                  // heating up...
  EXPECT_LT(after_1s, 0.5 * (t0 + target)); // ...but nowhere near steady yet
  for (int i = 0; i < 300; ++i) plant.step(1.0, 1.0);
  EXPECT_NEAR(plant.state().temp_c, target, 1.0);  // settles eventually
}

// ---- TraceRecorder ----------------------------------------------------------

TEST(TraceRecorder, CollapsesConstantRunsToOneBreakpoint) {
  sched::TraceRecorder recorder;
  for (int i = 0; i < 100; ++i) recorder.record(0.05 * i, 0.5);
  ASSERT_EQ(recorder.breakpoints().size(), 1u);
  EXPECT_DOUBLE_EQ(recorder.breakpoints()[0].load, 0.5);
}

TEST(TraceRecorder, IgnoresOutOfOrderAndJitter) {
  sched::TraceRecorder recorder;
  recorder.record(1.0, 0.5);
  recorder.record(0.5, 0.9);    // out of order: dropped
  recorder.record(2.0, 0.502);  // below 0.5 % jitter threshold: dropped
  recorder.record(3.0, 0.8);
  ASSERT_EQ(recorder.breakpoints().size(), 2u);
  EXPECT_DOUBLE_EQ(recorder.breakpoints()[1].time_s, 3.0);
}

TEST(TraceRecorder, KeepsCloseTimesDistinctAfterHoursOfRuntime) {
  // %g-style significant-digit formatting would collapse breakpoints an
  // hour-scale campaign records 50 ms apart into equal times, which
  // from_csv rejects; fixed-point timestamps must round-trip.
  sched::TraceRecorder recorder;
  recorder.record(10000.05, 0.2);
  recorder.record(10000.10, 0.8);
  recorder.record(100000.15, 0.4);
  const fs::path path = fs::temp_directory_path() / "fs2_test_long_trace.csv";
  {
    std::ofstream out(path);
    recorder.write_csv(out);
  }
  const sched::TraceProfile replay =
      sched::TraceProfile::from_csv(path.string(), /*loop=*/false);
  EXPECT_EQ(replay.breakpoints().size(), 3u);
  EXPECT_DOUBLE_EQ(replay.load_at(10000.07), 0.2);
  EXPECT_DOUBLE_EQ(replay.load_at(10000.12), 0.8);
  std::remove(path.string().c_str());
}

TEST(TraceRecorder, WrittenFilesTolerateExactlyOneHeaderRow) {
  // The recorder emits comments + a header; from_csv must skip that header
  // but still hard-error on further malformed rows instead of silently
  // dropping data.
  const fs::path path = fs::temp_directory_path() / "fs2_test_header_trace.csv";
  {
    std::ofstream out(path);
    out << "# comment\n# another\ntime_s,load_pct\n0,20\n5,80\n";
  }
  EXPECT_EQ(sched::TraceProfile::from_csv(path.string(), false).breakpoints().size(), 2u);
  {
    std::ofstream out(path);
    out << "# comment\ntime_s,load_pct\n0s,20\n5,80\n";  // typo'd data row
  }
  EXPECT_THROW(sched::TraceProfile::from_csv(path.string(), false), ConfigError);
  {
    // A typo'd FIRST data row must error too, not pass as a second header:
    // it starts numerically, so the header heuristic does not claim it.
    std::ofstream out(path);
    out << "# comment\n# more comments\n0s,20\n5,80\n";
  }
  EXPECT_THROW(sched::TraceProfile::from_csv(path.string(), false), ConfigError);
  std::remove(path.string().c_str());
}

TEST(FeedbackLoop, SetTargetRetunesMidRun) {
  // Cluster mode: the coordinator reassigns the setpoint while the loop is
  // running; subsequent ticks regulate (and report) against the new value.
  Setpoint sp;
  sp.variable = ControlVariable::kPower;
  sp.value = 100.0;
  auto profile = std::make_shared<ControlledProfile>(0.5);
  FeedbackLoop loop(sp, profile, /*plant_scale=*/200.0, /*initial_level=*/0.5);
  loop.tick(0.25, 100.0);  // on target: no correction pressure
  loop.set_target(150.0);
  EXPECT_DOUBLE_EQ(loop.setpoint().value, 150.0);
  const double level = loop.tick(0.5, 100.0);  // now 50 W short
  EXPECT_GT(level, profile->level() - 1e-12);  // commanded upward
  EXPECT_GT(level, 0.5);
  // Convergence judges against the NEW target.
  for (int i = 2; i < 40; ++i) loop.tick(0.25 * (i + 1), 150.0);
  EXPECT_TRUE(loop.converged(5.0));
  EXPECT_THROW(loop.set_target(0.0), Error);
}

TEST(TraceRecorder, RoundTripsThroughTraceProfile) {
  sched::TraceRecorder recorder;
  recorder.record(0.0, 0.2);
  recorder.record(10.0, 0.8);
  recorder.record(20.0, 0.4);
  const fs::path path = fs::temp_directory_path() / "fs2_test_recorded_trace.csv";
  {
    std::ofstream out(path);
    recorder.write_csv(out);
  }
  const sched::TraceProfile replay = sched::TraceProfile::from_csv(path.string(),
                                                                   /*loop=*/false);
  EXPECT_DOUBLE_EQ(replay.load_at(5.0), 0.2);
  EXPECT_DOUBLE_EQ(replay.load_at(15.0), 0.8);
  EXPECT_DOUBLE_EQ(replay.load_at(25.0), 0.4);  // holds last level
  std::remove(path.string().c_str());
}

}  // namespace
}  // namespace fs2::control
