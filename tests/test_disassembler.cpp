// Tests for the kernel disassembler: encode -> decode round trips over the
// full emitted instruction set, and the property that every compiled
// payload disassembles completely (no unrecognized bytes) — which checks
// the encoder and decoder against each other instruction by instruction.

#include <gtest/gtest.h>

#include "arch/cache.hpp"
#include "jit/assembler.hpp"
#include "jit/disassembler.hpp"
#include "payload/compiler.hpp"
#include "payload/mix.hpp"

namespace fs2::jit {
namespace {

std::vector<DecodedInstruction> decode(Assembler& a) {
  const auto code = a.finalize();
  return disassemble(code);
}

testing::AssertionResult decodes_as(Assembler& a,
                                    std::initializer_list<const char*> expected) {
  const auto instructions = decode(a);
  std::vector<std::string> texts;
  for (const auto& instruction : instructions) {
    if (!instruction.valid)
      return testing::AssertionFailure() << "undecodable at offset " << instruction.offset
                                         << ": " << instruction.text;
    texts.push_back(instruction.text);
  }
  std::vector<std::string> want(expected.begin(), expected.end());
  if (texts == want) return testing::AssertionSuccess();
  std::string got;
  for (const auto& t : texts) got += t + " | ";
  return testing::AssertionFailure() << "decoded: " << got;
}

TEST(Disassembler, IntegerInstructions) {
  Assembler a;
  a.mov(Gp::rax, 0x1234);
  a.mov(Gp::rcx, Gp::rsi);
  a.mov(Gp::r8, ptr(Gp::rdi, 8));
  a.mov(ptr(Gp::rsp), Gp::rbx);
  a.add(Gp::r10, 0x40);
  a.sub(Gp::rax, 1);
  a.and_(Gp::r8, ~0x4000);
  a.xor_(Gp::rdx, Gp::rsi);
  a.shl(Gp::r11, 1);
  a.shr(Gp::r11, 2);
  a.inc(Gp::rax);
  a.dec(Gp::rcx);
  a.test(Gp::rcx, Gp::rcx);
  a.cmp(Gp::rax, 5);
  a.push(Gp::r12);
  a.pop(Gp::r12);
  a.ret();
  EXPECT_TRUE(decodes_as(
      a, {"mov rax, 0x1234", "mov rcx, rsi", "mov r8, [rdi+8]", "mov [rsp], rbx",
          "add r10, 0x40", "sub rax, 0x1", "and r8, 0xffffbfff", "xor rdx, rsi", "shl r11, 1",
          "shr r11, 2", "inc rax", "dec rcx", "test rcx, rcx", "cmp rax, 0x5", "push r12",
          "pop r12", "ret"}));
}

TEST(Disassembler, VexInstructions) {
  Assembler a;
  a.vmovapd(Ymm::ymm1, ptr(Gp::rax));
  a.vmovapd(ptr(Gp::r9, 64), Ymm::ymm10);
  a.vmovapd(Ymm::ymm2, Ymm::ymm3);
  a.vaddpd(Ymm::ymm0, Ymm::ymm1, Ymm::ymm2);
  a.vmulpd(Ymm::ymm4, Ymm::ymm5, ptr(Gp::rbx, -32));
  a.vxorpd(Ymm::ymm6, Ymm::ymm7, Ymm::ymm8);
  a.vfmadd231pd(Ymm::ymm0, Ymm::ymm14, Ymm::ymm12);
  a.vfmadd231pd(Ymm::ymm3, Ymm::ymm13, ptr(Gp::r8, 128));
  a.vzeroupper();
  EXPECT_TRUE(decodes_as(
      a, {"vmovapd ymm1, [rax]", "vmovapd [r9+64], ymm10", "vmovapd ymm2, ymm3",
          "vaddpd ymm0, ymm1, ymm2", "vmulpd ymm4, ymm5, [rbx-32]",
          "vxorpd ymm6, ymm7, ymm8", "vfmadd231pd ymm0, ymm14, ymm12",
          "vfmadd231pd ymm3, ymm13, [r8+128]", "vzeroupper"}));
}

TEST(Disassembler, EvexInstructions) {
  Assembler a;
  a.vmovapd(Zmm::zmm1, ptr(Gp::rax));
  a.vmovapd(ptr(Gp::r9, 64), Zmm::zmm10);
  a.vfmadd231pd(Zmm::zmm0, Zmm::zmm14, Zmm::zmm12);
  a.vfmadd231pd(Zmm::zmm8, Zmm::zmm13, ptr(Gp::r8, 192));
  a.vaddpd(Zmm::zmm3, Zmm::zmm4, Zmm::zmm5);
  a.vmulpd(Zmm::zmm6, Zmm::zmm7, Zmm::zmm9);
  EXPECT_TRUE(decodes_as(
      a, {"vmovapd zmm1, [rax]", "vmovapd [r9+64], zmm10",
          "vfmadd231pd zmm0, zmm14, zmm12", "vfmadd231pd zmm8, zmm13, [r8+192]",
          "vaddpd zmm3, zmm4, zmm5", "vmulpd zmm6, zmm7, zmm9"}));
}

TEST(Disassembler, SseAndPrefetch) {
  Assembler a;
  a.movapd(Xmm::xmm2, ptr(Gp::rsi));
  a.movapd(ptr(Gp::rdi, 16), Xmm::xmm3);
  a.mulpd(Xmm::xmm0, Xmm::xmm1);
  a.addpd(Xmm::xmm4, ptr(Gp::rdx, 32));
  a.prefetch(ptr(Gp::rbx), PrefetchHint::t2);
  a.prefetch(ptr(Gp::r10, 64), PrefetchHint::nta);
  EXPECT_TRUE(decodes_as(a, {"movapd xmm2, [rsi]", "movapd [rdi+16], xmm3",
                             "mulpd xmm0, xmm1", "addpd xmm4, [rdx+32]", "prefetcht2 [rbx]",
                             "prefetchnta [r10+64]"}));
}

TEST(Disassembler, BranchTargets) {
  Assembler a;
  Label top = a.new_label();
  a.bind(top);
  a.dec(Gp::rcx);
  a.jnz(top);
  a.ret();
  const auto instructions = decode(a);
  ASSERT_EQ(instructions.size(), 3u);
  EXPECT_EQ(instructions[1].text, "jnz 0x0");  // back to offset 0
}

TEST(Disassembler, NopPadding) {
  Assembler a;
  a.ret();
  a.align(16);
  const auto instructions = decode(a);
  std::size_t total = 0;
  for (const auto& instruction : instructions) {
    EXPECT_TRUE(instruction.valid) << "at " << instruction.offset;
    total += instruction.length;
  }
  EXPECT_EQ(total, 16u);
}

TEST(Disassembler, StopsAtUnknownByte) {
  const std::uint8_t junk[] = {0xC3, 0xF4};  // ret; hlt (hlt never emitted)
  const auto instructions = disassemble(junk);
  ASSERT_EQ(instructions.size(), 2u);
  EXPECT_TRUE(instructions[0].valid);
  EXPECT_FALSE(instructions[1].valid);
}

// The strongest property: every payload the compiler can produce decodes
// completely, for every ISA class and a spread of group lists.
struct ListingCase {
  const char* function;
  const char* groups;
};

class PayloadListing : public testing::TestWithParam<ListingCase> {};

TEST_P(PayloadListing, CompiledKernelDecodesCompletely) {
  const auto& fn = payload::find_function(GetParam().function);
  payload::CompileOptions options;
  options.unroll = 48;
  options.ram_region_bytes = 1 << 20;
  options.dump_registers = true;
  auto workload =
      payload::compile_payload(fn.mix, payload::InstructionGroups::parse(GetParam().groups),
                               arch::CacheHierarchy::zen2(), options);
  const auto instructions = disassemble(workload.code_bytes());
  ASSERT_FALSE(instructions.empty());
  std::size_t rets = 0;
  for (const auto& instruction : instructions) {
    ASSERT_TRUE(instruction.valid)
        << "undecodable byte at offset " << instruction.offset << " in " << GetParam().function;
    if (instruction.text == "ret") ++rets;
  }
  EXPECT_EQ(rets, 1u);  // exactly one exit; everything after it is map padding? none: ret is last
}

INSTANTIATE_TEST_SUITE_P(
    AllIsaClasses, PayloadListing,
    testing::Values(ListingCase{"FUNC_FMA_256_ZEN2", "REG:4,L1_L:2,L2_L:1"},
                    ListingCase{"FUNC_FMA_256_ZEN2", "L1_2LS:3,L3_P:1,RAM_LS:1,REG:2"},
                    ListingCase{"FUNC_AVX_256", "REG:2,L1_LS:2,L2_S:1"},
                    ListingCase{"FUNC_SSE2_128", "REG:2,L1_2LS:1,RAM_L:1"},
                    ListingCase{"FUNC_AVX512_512_GENERIC", "REG:2,L1_LS:2,L3_LS:1,RAM_P:1"}),
    [](const testing::TestParamInfo<ListingCase>& info) {
      std::string name = std::string(info.param.function) + "_" + std::to_string(info.index);
      for (char& c : name)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

TEST(Disassembler, ListingFormatsOffsetsAndHex) {
  Assembler a;
  a.mov(Gp::rax, std::uint64_t{7});
  a.ret();
  const auto code = a.finalize();
  const std::string listing = format_listing(code);
  EXPECT_NE(listing.find("0:"), std::string::npos);
  EXPECT_NE(listing.find("48 b8"), std::string::npos);
  EXPECT_NE(listing.find("mov rax, 0x7"), std::string::npos);
  EXPECT_NE(listing.find("ret"), std::string::npos);
}

}  // namespace
}  // namespace fs2::jit
