// Tests for the top-level orchestration: CLI parsing (every paper flag),
// the simulated stress/optimization paths end to end, and the evaluation
// backends.

#include <gtest/gtest.h>

#include <sstream>

#include "firestarter/backends.hpp"
#include "firestarter/config.hpp"
#include "firestarter/firestarter.hpp"
#include "util/error.hpp"

namespace fs2::firestarter {
namespace {

Config parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"fs2"};
  argv.insert(argv.end(), args.begin(), args.end());
  return parse_args(static_cast<int>(argv.size()), argv.data());
}

// ---- CLI parsing -----------------------------------------------------------

TEST(Cli, DefaultsMatchPaper) {
  const Config cfg = parse({});
  EXPECT_FALSE(cfg.optimize);
  EXPECT_DOUBLE_EQ(cfg.load, 1.0);
  EXPECT_EQ(cfg.individuals, 40u);      // Sec. IV-E defaults
  EXPECT_EQ(cfg.generations, 20u);
  EXPECT_DOUBLE_EQ(cfg.nsga2_m, 0.35);
  EXPECT_DOUBLE_EQ(cfg.preheat_s, 240.0);
  EXPECT_DOUBLE_EQ(cfg.start_delta_s, 5.0);   // Sec. III-D defaults
  EXPECT_DOUBLE_EQ(cfg.stop_delta_s, 2.0);
  EXPECT_EQ(cfg.target, TargetSystem::kHost);
}

TEST(Cli, PaperSectionIVEFlagSet) {
  // The exact flag set of Sec. IV-E (modulo the metric plugin path).
  const Config cfg = parse({"--optimize=NSGA2", "--individuals=40", "--generations=20",
                            "--nsga2-m=0.35", "-t", "10", "--preheat=240",
                            "--optimization-metric=metricq,perf-ipc",
                            "--metric-path=libmetric-metricq.so"});
  EXPECT_TRUE(cfg.optimize);
  EXPECT_EQ(cfg.individuals, 40u);
  EXPECT_EQ(cfg.generations, 20u);
  EXPECT_DOUBLE_EQ(cfg.nsga2_m, 0.35);
  EXPECT_DOUBLE_EQ(cfg.candidate_duration_s, 10.0);
  EXPECT_DOUBLE_EQ(cfg.preheat_s, 240.0);
  ASSERT_EQ(cfg.optimization_metrics.size(), 2u);
  EXPECT_EQ(cfg.optimization_metrics[0], "metricq");
  EXPECT_EQ(cfg.optimization_metrics[1], "perf-ipc");
  EXPECT_EQ(*cfg.metric_path, "libmetric-metricq.so");
}

TEST(Cli, MeasurementFlags) {
  // Footnote 12: --measurement -t 240 --start-delta=120000 --stop-delta=2000.
  const Config cfg =
      parse({"--measurement", "-t", "240", "--start-delta=120000", "--stop-delta=2000"});
  EXPECT_TRUE(cfg.measurement);
  EXPECT_DOUBLE_EQ(cfg.timeout_s, 240.0);
  EXPECT_DOUBLE_EQ(cfg.start_delta_s, 120.0);
  EXPECT_DOUBLE_EQ(cfg.stop_delta_s, 2.0);
}

TEST(Cli, WorkloadFlags) {
  const Config cfg = parse({"-i", "4", "--run-instruction-groups=REG:4,L1_L:2,L2_L:1",
                            "--set-line-count=1234", "--allow-infinity-bug"});
  EXPECT_EQ(*cfg.function_id, 4);
  EXPECT_EQ(*cfg.instruction_groups, "REG:4,L1_L:2,L2_L:1");
  EXPECT_EQ(*cfg.line_count, 1234u);
  EXPECT_TRUE(cfg.v174_bug_mode);
}

TEST(Cli, FunctionByName) {
  const Config cfg = parse({"--function", "FUNC_FMA_256_ZEN2"});
  EXPECT_FALSE(cfg.function_id.has_value());
  EXPECT_EQ(*cfg.function_name, "FUNC_FMA_256_ZEN2");
}

TEST(Cli, SimulationTargets) {
  EXPECT_EQ(parse({"--simulate"}).target, TargetSystem::kSimZen2);
  EXPECT_EQ(parse({"--simulate=zen2"}).target, TargetSystem::kSimZen2);
  EXPECT_EQ(parse({"--simulate=haswell"}).target, TargetSystem::kSimHaswell);
  EXPECT_EQ(parse({"--simulate=haswell-gpu"}).target, TargetSystem::kSimHaswellGpu);
  EXPECT_THROW(parse({"--simulate=sparc"}), ConfigError);
}

TEST(Cli, LoadIsPercent) {
  EXPECT_DOUBLE_EQ(parse({"--load", "50"}).load, 0.5);
  EXPECT_THROW(parse({"--load", "150"}), ConfigError);
}

TEST(Cli, PeriodIsMicroseconds) {
  EXPECT_DOUBLE_EQ(parse({}).period_s, 0.1);  // paper default: 100 ms
  EXPECT_DOUBLE_EQ(parse({"-p", "50000"}).period_s, 0.05);
  EXPECT_DOUBLE_EQ(parse({"--period=200000"}).period_s, 0.2);
  EXPECT_THROW(parse({"--period", "0"}), ConfigError);
  EXPECT_THROW(parse({"-p", "-10"}), ConfigError);
  EXPECT_THROW(parse({"-p", "nan"}), ConfigError);  // strtod accepts "nan"; we don't
}

TEST(Cli, LoadScheduleFlags) {
  const Config cfg = parse({"--load-profile=sine:low=10,high=90,period=2",
                            "--phase-offset=250000", "--campaign", "burnin.campaign"});
  EXPECT_EQ(*cfg.load_profile, "sine:low=10,high=90,period=2");
  EXPECT_DOUBLE_EQ(cfg.phase_offset_s, 0.25);
  EXPECT_EQ(*cfg.campaign_file, "burnin.campaign");
  EXPECT_FALSE(parse({}).load_profile.has_value());
  EXPECT_FALSE(parse({}).campaign_file.has_value());
  EXPECT_THROW(parse({"--phase-offset=-1"}), ConfigError);
}

TEST(Cli, RejectsBadInput) {
  EXPECT_THROW(parse({"--bogus-flag"}), ConfigError);
  EXPECT_THROW(parse({"--set-line-count", "abc"}), ConfigError);
  EXPECT_THROW(parse({"--optimize=SIMPLEX"}), ConfigError);
  EXPECT_THROW(parse({"--nsga2-m=1.5"}), ConfigError);
  EXPECT_THROW(parse({"-t"}), ConfigError);  // missing value
}

TEST(Cli, OptimizeDefaultsMetrics) {
  const Config cfg = parse({"--optimize=NSGA2"});
  ASSERT_EQ(cfg.optimization_metrics.size(), 2u);
  EXPECT_EQ(cfg.optimization_metrics[0], "power");
  EXPECT_EQ(cfg.optimization_metrics[1], "ipc");
}

TEST(Cli, UsageMentionsEveryUserFlag) {
  const std::string text = usage();
  for (const char* flag :
       {"--avail", "--function", "--run-instruction-groups", "--set-line-count", "--timeout",
        "--load", "--period", "--load-profile", "--phase-offset", "--campaign", "--threads",
        "--dump-registers", "--measurement", "--start-delta", "--stop-delta", "--optimize",
        "--individuals", "--generations", "--nsga2-m", "--preheat", "--optimization-metric",
        "--metric-path", "--simulate", "--freq"})
    EXPECT_NE(text.find(flag), std::string::npos) << flag;
}

// ---- orchestration (simulated, fast) ------------------------------------------

int run_fs2(std::initializer_list<const char*> args, std::string* output) {
  Config cfg = parse(args);
  std::ostringstream out;
  Firestarter app(std::move(cfg), out);
  const int rc = app.run();
  *output = out.str();
  return rc;
}

TEST(App, ListFunctions) {
  std::string out;
  EXPECT_EQ(run_fs2({"--avail"}, &out), 0);
  EXPECT_NE(out.find("FUNC_FMA_256_ZEN2"), std::string::npos);
  EXPECT_NE(out.find("FUNC_SSE2_128"), std::string::npos);
}

TEST(App, ListMetrics) {
  std::string out;
  EXPECT_EQ(run_fs2({"--list-metrics"}, &out), 0);
  EXPECT_NE(out.find("sysfs-powercap-rapl"), std::string::npos);
  EXPECT_NE(out.find("ipc-estimate"), std::string::npos);
}

TEST(App, SimulatedStressRunReportsSteadyState) {
  std::string out;
  EXPECT_EQ(run_fs2({"--simulate=zen2", "--freq", "1500", "-t", "30", "--measurement",
                     "--start-delta=2000", "--stop-delta=1000"},
                    &out),
            0);
  EXPECT_NE(out.find("2x AMD EPYC 7502"), std::string::npos);
  EXPECT_NE(out.find("FUNC_FMA_256_ZEN2"), std::string::npos);
  EXPECT_NE(out.find("steady state:"), std::string::npos);
  EXPECT_NE(out.find("sim-wall-power"), std::string::npos);
}

TEST(App, SimulatedInfinityBugLowersReportedPower) {
  auto power_of = [](bool bug) {
    std::string out;
    if (bug)
      run_fs2({"--simulate=zen2", "--run-instruction-groups=REG:1", "--allow-infinity-bug"},
              &out);
    else
      run_fs2({"--simulate=zen2", "--run-instruction-groups=REG:1"}, &out);
    const auto pos = out.find("steady state: ");
    EXPECT_NE(pos, std::string::npos);
    return std::stod(out.substr(pos + 14));
  };
  EXPECT_GT(power_of(false), power_of(true));
}

TEST(App, SimulatedOptimizationEndToEnd) {
  std::string out;
  EXPECT_EQ(run_fs2({"--simulate=zen2", "--freq", "1500", "--optimize=NSGA2",
                     "--individuals=8", "--generations=3", "-t", "5",
                     "--optimization-log=/tmp/fs2_test_opt.csv"},
                    &out),
            0);
  EXPECT_NE(out.find("selected optimum:"), std::string::npos);
  EXPECT_NE(out.find("candidate evaluations logged"), std::string::npos);
  // 8 individuals x (initial + 3 generations) = 32 evaluations.
  EXPECT_NE(out.find("32 candidate evaluations"), std::string::npos);
}

// ---- backends -------------------------------------------------------------------

TEST(SimBackendTest, MoreMemoryLevelsScoreHigherPower) {
  sim::SimulatedSystem system(sim::MachineConfig::zen2_epyc7502_2s());
  sim::RunConditions cond;
  cond.freq_mhz = 1500;
  SimBackend backend(system, payload::find_function("FUNC_FMA_256_ZEN2").mix,
                     arch::CacheHierarchy::zen2(), cond, /*duration=*/5.0, /*seed=*/1);
  backend.preheat();
  const auto reg = backend.evaluate(payload::InstructionGroups::parse("REG:1"));
  const auto l2 = backend.evaluate(payload::InstructionGroups::parse("L2_LS:3,L1_LS:12,REG:6"));
  ASSERT_EQ(reg.size(), 2u);
  EXPECT_GT(l2[0], reg[0]);          // more power
  EXPECT_GT(reg[1], 3.5);            // REG-only IPC near 4
  EXPECT_EQ(backend.objective_names().size(), 2u);
}

TEST(SimBackendTest, EvaluationIsApproximatelyDeterministic) {
  sim::SimulatedSystem system(sim::MachineConfig::zen2_epyc7502_2s());
  sim::RunConditions cond;
  cond.freq_mhz = 1500;
  SimBackend backend(system, payload::find_function("FUNC_FMA_256_ZEN2").mix,
                     arch::CacheHierarchy::zen2(), cond, 5.0, 1);
  const auto a = backend.evaluate(payload::InstructionGroups::parse("REG:1"));
  const auto b = backend.evaluate(payload::InstructionGroups::parse("REG:1"));
  // Different measurement noise per evaluation, but within the noise band.
  EXPECT_NEAR(a[0], b[0], a[0] * 0.01);
  EXPECT_DOUBLE_EQ(a[1], b[1]);  // IPC has no noise
}

}  // namespace
}  // namespace fs2::firestarter
