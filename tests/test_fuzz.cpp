// Tests of the payload pattern fuzzer: spec round-trips, seeded generator
// determinism, response-signature distillation and dedupe, corpus ranking
// and eviction bounds, and the end-to-end discovery loop — locally on one
// simulated system and fanned across a 16-node loopback fleet, where the
// same seed must reproduce the identical ranked corpus and the top pattern
// must beat the default payload's baseline.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "firestarter/config.hpp"
#include "firestarter/firestarter.hpp"
#include "fuzz/corpus.hpp"
#include "fuzz/evaluator.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/pattern.hpp"
#include "fuzz/report.hpp"
#include "fuzz/signature.hpp"
#include "util/error.hpp"

namespace {

using namespace fs2;
using namespace fs2::fuzz;

// ---- pattern specs ----------------------------------------------------------

TEST(PatternSpec, RoundTripsThroughParse) {
  for (const char* text : {"REG:4,L1_L:2,L2_L:1|u=32", "L1_LS:77", "RAM_P:3|u=1"}) {
    const PatternSpec spec = PatternSpec::parse(text);
    EXPECT_EQ(spec.to_string(), text);
    EXPECT_TRUE(PatternSpec::parse(spec.to_string()) == spec);
  }
}

TEST(PatternSpec, ZeroUnrollMeansCompilerDefaultAndOmitsSuffix) {
  const PatternSpec spec = PatternSpec::parse("REG:2");
  EXPECT_EQ(spec.unroll, 0u);
  EXPECT_EQ(spec.to_string(), "REG:2");
}

TEST(PatternSpec, RejectsMalformedText) {
  EXPECT_THROW(PatternSpec::parse("REG:2|u=0"), ConfigError);
  EXPECT_THROW(PatternSpec::parse("REG:2|u=999999"), ConfigError);
  EXPECT_THROW(PatternSpec::parse("REG:2|x=4"), ConfigError);
  EXPECT_THROW(PatternSpec::parse("NOPE:2"), ConfigError);
}

// ---- generator --------------------------------------------------------------

TEST(PatternGenerator, SameSeedReproducesTheSequence) {
  PatternGenerator a(1234), b(1234);
  PatternSpec last;
  for (int i = 0; i < 64; ++i) {
    const PatternSpec sa = a.random();
    const PatternSpec sb = b.random();
    EXPECT_TRUE(sa == sb) << sa.to_string() << " vs " << sb.to_string();
    last = sa;
  }
  for (int i = 0; i < 64; ++i) {
    const PatternSpec ma = a.mutate(last);
    const PatternSpec mb = b.mutate(last);
    EXPECT_TRUE(ma == mb);
    last = ma;
  }
}

TEST(PatternGenerator, EverySpecRoundTripsAndRespectsLimits) {
  GeneratorLimits limits;
  PatternGenerator gen(99, limits);
  for (int i = 0; i < 200; ++i) {
    const PatternSpec spec = gen.random();
    EXPECT_TRUE(PatternSpec::parse(spec.to_string()) == spec) << spec.to_string();
    EXPECT_LE(spec.groups.groups().size(), limits.max_kinds);
    EXPECT_GE(spec.groups.groups().size(), limits.min_kinds);
    for (const payload::Group& group : spec.groups.groups()) {
      EXPECT_GE(group.count, 1u);
      EXPECT_LE(group.count, limits.max_count);
    }
    EXPECT_LE(spec.unroll, limits.max_unroll);  // 0 = compiler default
  }
}

TEST(PatternGenerator, MutationNeverReturnsTheParent) {
  PatternGenerator gen(5);
  PatternSpec parent = gen.random();
  for (int i = 0; i < 200; ++i) {
    const PatternSpec child = gen.mutate(parent);
    EXPECT_FALSE(child == parent) << parent.to_string();
    EXPECT_TRUE(PatternSpec::parse(child.to_string()) == child);
    parent = child;
  }
}

// ---- signatures -------------------------------------------------------------

metrics::Summary row(const char* name, const char* phase, double mean, double min,
                     double max, std::size_t samples = 60) {
  metrics::Summary s;
  s.name = name;
  s.phase = phase;
  s.mean = mean;
  s.min = min;
  s.max = max;
  s.samples = samples;
  return s;
}

TEST(ResponseSignature, DistilledFromTheMatchingPhaseRowsOnly) {
  const std::vector<metrics::Summary> rows = {
      row("sim-wall-power", "r0", 300.0, 120.0, 470.0),
      row("sim-perf-ipc", "r0", 2.0, 0.0, 3.1),
      row("sim-package-temp", "r0", 50.0, 40.0, 52.0),
      row("sim-wall-power", "r1", 999.0, 999.0, 999.0),  // other phase: ignored
  };
  const ResponseSignature sig = signature_from_rows(rows, "r0", 10.0);
  EXPECT_TRUE(sig.valid());
  EXPECT_DOUBLE_EQ(sig.mean_power_w, 300.0);
  EXPECT_DOUBLE_EQ(sig.max_power_w, 470.0);
  EXPECT_DOUBLE_EQ(sig.min_power_w, 120.0);
  EXPECT_DOUBLE_EQ(sig.power_swing_w, 350.0);
  EXPECT_DOUBLE_EQ(sig.ipc, 3.1);
  EXPECT_DOUBLE_EQ(sig.thermal_slope_c_per_s, 1.2);
  EXPECT_FALSE(signature_from_rows(rows, "nope", 10.0).valid());
}

TEST(ResponseSignature, NearIdenticalResponsesShareADedupeKey) {
  ResponseSignature a;
  a.mean_power_w = 300.0;
  a.max_power_w = 470.0;
  a.min_power_w = 120.0;
  a.power_swing_w = 350.0;
  a.ipc = 3.10;
  a.thermal_slope_c_per_s = 0.480;
  a.samples = 60;
  ResponseSignature b = a;  // within the noise floor: sub-watt, centi-IPC
  b.mean_power_w += 0.4;
  b.max_power_w -= 0.3;
  b.ipc += 0.004;
  EXPECT_EQ(dedupe_key(a), dedupe_key(b));
  ResponseSignature c = a;  // clearly distinct response
  c.max_power_w += 25.0;
  c.power_swing_w += 25.0;
  EXPECT_NE(dedupe_key(a), dedupe_key(c));
}

// ---- corpus -----------------------------------------------------------------

CorpusEntry entry(const std::string& spec_text, double peak, double swing,
                  double slope) {
  CorpusEntry e;
  e.spec = PatternSpec::parse(spec_text);
  e.signature.mean_power_w = peak * 0.7;
  e.signature.max_power_w = peak;
  e.signature.min_power_w = peak - swing;
  e.signature.power_swing_w = swing;
  e.signature.ipc = 2.0;
  e.signature.thermal_slope_c_per_s = slope;
  e.signature.samples = 60;
  return e;
}

TEST(Corpus, RanksDescendingAndBoundsEveryObjectiveList) {
  Corpus corpus(2);
  EXPECT_EQ(corpus.add(entry("REG:1", 400, 300, 0.5)), Corpus::AddStatus::kAdded);
  EXPECT_EQ(corpus.add(entry("REG:2", 450, 250, 0.4)), Corpus::AddStatus::kAdded);
  EXPECT_EQ(corpus.add(entry("REG:3", 425, 275, 0.45)), Corpus::AddStatus::kAdded);
  const auto peak = corpus.ranked(Objective::kPeakPower);
  ASSERT_EQ(peak.size(), 2u);
  EXPECT_EQ(peak[0]->spec.to_string(), "REG:2");
  EXPECT_EQ(peak[1]->spec.to_string(), "REG:3");
  const auto swing = corpus.ranked(Objective::kPowerSwing);
  ASSERT_EQ(swing.size(), 2u);
  EXPECT_EQ(swing[0]->spec.to_string(), "REG:1");
  EXPECT_EQ(corpus.rank_of(PatternSpec::parse("REG:2"), Objective::kPeakPower), 1u);
  EXPECT_EQ(corpus.rank_of(PatternSpec::parse("REG:1"), Objective::kPeakPower), 0u)
      << "evicted from the peak list";
  // Union bound: at most cap per objective retained overall.
  EXPECT_LE(corpus.entries().size(), 3 * corpus.cap());
}

TEST(Corpus, EvictsDominatedEntriesAndReportsCulls) {
  Corpus corpus(2);
  corpus.add(entry("REG:1", 400, 300, 0.50));
  corpus.add(entry("REG:2", 410, 310, 0.51));
  corpus.add(entry("REG:3", 420, 320, 0.52));
  // Dominated on every axis by all three: never retained.
  EXPECT_EQ(corpus.add(entry("REG:4", 100, 50, 0.01)), Corpus::AddStatus::kCulled);
  EXPECT_EQ(corpus.entries().size(), 2u);
  for (const CorpusEntry& kept : corpus.entries())
    EXPECT_NE(kept.spec.to_string(), "REG:4");
}

TEST(Corpus, DeduplicatesSpecsAndSignals) {
  Corpus corpus(4);
  EXPECT_EQ(corpus.add(entry("REG:1", 400, 300, 0.5)), Corpus::AddStatus::kAdded);
  EXPECT_EQ(corpus.add(entry("REG:1", 999, 999, 9.9)), Corpus::AddStatus::kDuplicateSpec);
  // New spec, response within the dedupe quantum of REG:1's.
  CorpusEntry clone = entry("REG:1,L1_L:1", 400, 300, 0.5);
  clone.signature.max_power_w += 0.2;
  EXPECT_EQ(corpus.add(clone), Corpus::AddStatus::kDuplicateSignal);
  EXPECT_EQ(corpus.entries().size(), 1u);
}

TEST(Corpus, ObjectiveSubsetOnlyRetainsAlongThatAxis) {
  Corpus corpus(1, {Objective::kPowerSwing});
  corpus.add(entry("REG:1", 500, 100, 0.9));  // peak/thermal king, swing loser
  EXPECT_EQ(corpus.add(entry("REG:2", 200, 180, 0.1)), Corpus::AddStatus::kAdded);
  ASSERT_EQ(corpus.entries().size(), 1u);
  EXPECT_EQ(corpus.entries()[0].spec.to_string(), "REG:2");
}

// ---- end-to-end: local and fleet --------------------------------------------

/// Stable fingerprint of a run's surviving corpus for equality checks.
std::string corpus_fingerprint(const FuzzResult& result) {
  std::ostringstream out;
  for (Objective objective : result.corpus.objectives()) {
    out << to_string(objective) << ":";
    for (const CorpusEntry* e : result.corpus.ranked(objective))
      out << " " << e->spec.to_string() << "@" << e->node << "="
          << objective_score(e->signature, objective);
    out << "\n";
  }
  return out.str();
}

firestarter::Config fleet_config() {
  firestarter::Config cfg;
  cfg.loopback_nodes = "zen2@2000x16";
  cfg.coordinator = true;
  cfg.cluster_start_delay_s = 0.1;
  cfg.seed = 42;  // run_fuzzer seeds this from --fuzz-seed; mirror it
  cfg.log_level = "warn";
  return cfg;
}

FuzzOptions fleet_options() {
  FuzzOptions options;
  options.seed = 42;
  options.population = 32;
  options.generations = 3;
  options.corpus_cap = 8;
  return options;
}

TEST(FuzzEndToEnd, LocalRunIsSeedReproducible) {
  firestarter::Config cfg;
  cfg.target = firestarter::TargetSystem::kSimZen2;
  cfg.seed = 11;
  std::ostringstream log_a, log_b;
  FuzzOptions options;
  options.seed = 11;
  options.population = 4;
  options.generations = 1;
  options.corpus_cap = 4;
  const FuzzResult a = run_fuzz(*make_local_evaluator(cfg, 3.0), options, log_a);
  const FuzzResult b = run_fuzz(*make_local_evaluator(cfg, 3.0), options, log_b);
  EXPECT_FALSE(a.corpus.empty());
  EXPECT_EQ(corpus_fingerprint(a), corpus_fingerprint(b));
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_TRUE(a.records[i].entry.spec == b.records[i].entry.spec);
    EXPECT_EQ(a.records[i].entry.signature.max_power_w,
              b.records[i].entry.signature.max_power_w);
  }
}

TEST(FuzzEndToEnd, HostTargetIsRejected) {
  firestarter::Config cfg;  // target defaults to kHost
  EXPECT_THROW(make_local_evaluator(cfg, 3.0), ConfigError);
}

TEST(FuzzEndToEnd, FleetSweepBeatsTheDefaultAndReproduces) {
  // The acceptance gate: >= 16 nodes, >= 32 candidates, the seeded sweep's
  // top pattern beats the default payload on at least one power objective,
  // and the same seed reproduces the identical corpus.
  std::ostringstream log_a, log_b;
  const FuzzResult a =
      run_fuzz(*make_fleet_evaluator(fleet_config(), 3.0, log_a), fleet_options(), log_a);
  ASSERT_FALSE(a.corpus.empty());
  ASSERT_EQ(a.baseline.size(), 16u);

  double default_peak = 0.0, default_swing = 0.0;
  for (const Evaluation& base : a.baseline) {
    EXPECT_TRUE(base.signature.valid());
    default_peak = std::max(default_peak, base.signature.max_power_w);
    default_swing = std::max(default_swing, base.signature.power_swing_w);
  }
  const double top_peak =
      objective_score(a.corpus.ranked(Objective::kPeakPower).front()->signature,
                      Objective::kPeakPower);
  const double top_swing =
      objective_score(a.corpus.ranked(Objective::kPowerSwing).front()->signature,
                      Objective::kPowerSwing);
  EXPECT_TRUE(top_peak > default_peak || top_swing > default_swing)
      << "top peak " << top_peak << " W vs default " << default_peak << " W, top swing "
      << top_swing << " W vs default " << default_swing << " W";

  // 16 nodes x 32 candidates x 3 generations, attributed round-robin.
  std::size_t candidates = 0;
  for (const FuzzRecord& record : a.records)
    if (!record.baseline) ++candidates;
  EXPECT_EQ(candidates, 96u);

  const FuzzResult b =
      run_fuzz(*make_fleet_evaluator(fleet_config(), 3.0, log_b), fleet_options(), log_b);
  EXPECT_EQ(corpus_fingerprint(a), corpus_fingerprint(b));
}

TEST(FuzzEndToEnd, CliFuzzRunWritesAParseableReport) {
  const std::string path = "/tmp/fs2_test_fuzz_report.csv";
  std::remove(path.c_str());
  firestarter::Config cfg = fleet_config();
  cfg.fuzz = true;
  cfg.fuzz_seed = 7;
  cfg.fuzz_population = 8;
  cfg.fuzz_generations = 1;
  cfg.fuzz_duration_s = 3.0;
  cfg.fuzz_report = path;
  std::ostringstream out;
  firestarter::Firestarter app(cfg, out);
  EXPECT_EQ(app.run(), 0) << out.str();
  EXPECT_NE(out.str().find("ranked corpus"), std::string::npos) << out.str();

  std::ifstream report(path);
  ASSERT_TRUE(report.is_open());
  std::string header;
  ASSERT_TRUE(std::getline(report, header));
  EXPECT_NE(header.find("spec"), std::string::npos);
  EXPECT_NE(header.find("rank_peak_power"), std::string::npos);
  // Minimal quoted-field CSV split: spec strings contain commas.
  auto csv_field = [](const std::string& line, std::size_t want) {
    std::size_t pos = 0, field = 0;
    while (pos < line.size()) {
      std::string value;
      if (line[pos] == '"') {
        const std::size_t close = line.find('"', pos + 1);
        value = line.substr(pos + 1, close - pos - 1);
        pos = close + 2;  // skip the quote and the comma
      } else {
        const std::size_t comma = line.find(',', pos);
        value = line.substr(pos, comma - pos);
        pos = comma == std::string::npos ? line.size() : comma + 1;
      }
      if (field++ == want) return value;
    }
    return std::string();
  };
  std::string line;
  std::size_t rows = 0;
  while (std::getline(report, line)) {
    if (line.empty()) continue;
    ++rows;
    // Every row's spec string round-trips through the parser.
    const std::string spec_text = csv_field(line, 4);
    EXPECT_NO_THROW(PatternSpec::parse(spec_text)) << spec_text;
    // The seed is echoed as the trailing column of every row.
    ASSERT_GE(line.size(), 2u);
    EXPECT_EQ(line.substr(line.size() - 2), ",7") << "seed echoed: " << line;
  }
  EXPECT_EQ(rows, 16u + 16u);  // 16 baseline rows + 16 candidates (8 -> fleet multiple)
  std::remove(path.c_str());
}

}  // namespace
