// Tests for the GPU-style DGEMM stressor (the cuBLAS stand-in): numerical
// correctness of the blocked kernel against a naive reference, device-side
// initialization semantics, and lifecycle behaviour.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "gpu/dgemm_stress.hpp"
#include "util/rng.hpp"

namespace fs2::gpu {
namespace {

void naive_dgemm(std::size_t n, double alpha, const double* a, const double* b, double beta,
                 double* c) {
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < n; ++k) acc += a[i * n + k] * b[k * n + j];
      c[i * n + j] = alpha * acc + beta * c[i * n + j];
    }
}

class DgemmSizes : public testing::TestWithParam<std::size_t> {};

TEST_P(DgemmSizes, BlockedMatchesNaive) {
  const std::size_t n = GetParam();
  Xoshiro256 rng(n);
  std::vector<double> a(n * n), b(n * n), c0(n * n), c_blocked, c_naive;
  for (auto& v : a) v = rng.uniform(-1, 1);
  for (auto& v : b) v = rng.uniform(-1, 1);
  for (auto& v : c0) v = rng.uniform(-1, 1);
  c_blocked = c0;
  c_naive = c0;
  blocked_dgemm(n, 1.5, a.data(), b.data(), 0.25, c_blocked.data());
  naive_dgemm(n, 1.5, a.data(), b.data(), 0.25, c_naive.data());
  for (std::size_t i = 0; i < n * n; ++i)
    EXPECT_NEAR(c_blocked[i], c_naive[i], 1e-9 * n) << "element " << i;
}

// Sizes straddle the 64-wide block boundary (edge blocks, exact multiples).
INSTANTIATE_TEST_SUITE_P(Sizes, DgemmSizes, testing::Values(1, 7, 32, 64, 65, 96, 130));

TEST(DgemmStressor, RunsAndCounts) {
  GpuStressOptions options;
  options.devices = 2;
  options.matrix_n = 64;
  DgemmStressor stressor(options);
  EXPECT_EQ(stressor.total_gemms(), 0u);
  stressor.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  stressor.stop();
  EXPECT_GT(stressor.total_gemms(), 0u);
  const double n3 = 64.0 * 64.0 * 64.0;
  EXPECT_DOUBLE_EQ(stressor.total_flops(),
                   static_cast<double>(stressor.total_gemms()) * 2.0 * n3);
}

TEST(DgemmStressor, ChecksumBoundedAndNonzero) {
  // beta=0.5 contraction keeps C bounded; checksum must be a sane number
  // after many iterations (bit-flips / broken SIMD would show up here).
  GpuStressOptions options;
  options.devices = 1;
  options.matrix_n = 32;
  DgemmStressor stressor(options);
  stressor.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  stressor.stop();
  const double checksum = stressor.checksum(0);
  EXPECT_TRUE(std::isfinite(checksum));
  EXPECT_NE(checksum, 0.0);
}

TEST(DgemmStressor, DeviceSideInitIsSeeded) {
  // Different seeds -> different device data -> different checksums, even
  // with zero completed GEMMs... so run one fixed-duration burst each.
  auto checksum_for = [](std::uint64_t seed) {
    GpuStressOptions options;
    options.devices = 1;
    options.matrix_n = 16;
    options.seed = seed;
    DgemmStressor stressor(options);
    stressor.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    stressor.stop();
    return stressor.checksum(0);
  };
  EXPECT_NE(checksum_for(1), checksum_for(2));
}

TEST(DgemmStressor, StopWithoutStartIsClean) {
  GpuStressOptions options;
  options.devices = 2;
  options.matrix_n = 16;
  DgemmStressor stressor(options);
  stressor.stop();
  EXPECT_EQ(stressor.total_gemms(), 0u);
}

TEST(DgemmStressor, ZeroLoadProfileIdlesTheDevices) {
  // A constant-zero schedule means every window's busy span is empty: the
  // devices must sleep through the whole run without issuing a DGEMM.
  GpuStressOptions options;
  options.devices = 2;
  options.matrix_n = 32;
  options.profile = std::make_shared<sched::ConstantProfile>(0.0);
  DgemmStressor stressor(options);
  stressor.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  stressor.stop();
  EXPECT_EQ(stressor.total_gemms(), 0u);
}

TEST(DgemmStressor, PartialLoadThrottlesBelowFlatOut) {
  // 20 % duty over the same wall time must complete well under half the
  // flat-out DGEMM count (generous bound: scheduling noise on CI).
  auto gemms_at = [](sched::ProfilePtr profile) {
    GpuStressOptions options;
    options.devices = 1;
    options.matrix_n = 48;
    options.period_s = 0.05;
    options.profile = std::move(profile);
    DgemmStressor stressor(options);
    stressor.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    stressor.stop();
    return stressor.total_gemms();
  };
  const std::uint64_t flat = gemms_at(nullptr);
  const std::uint64_t throttled = gemms_at(std::make_shared<sched::ConstantProfile>(0.2));
  ASSERT_GT(flat, 0u);
  EXPECT_LT(throttled, flat / 2 + 1);
}

TEST(DgemmStressor, SetProfileRetargetsMidRun) {
  // Campaign phases swap schedules into a running stressor: a zero-load
  // start must stay idle, and flipping to full load must start the DGEMMs.
  GpuStressOptions options;
  options.devices = 1;
  options.matrix_n = 32;
  options.profile = std::make_shared<sched::ConstantProfile>(0.0);
  DgemmStressor stressor(options);
  stressor.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(stressor.total_gemms(), 0u);
  stressor.set_profile(std::make_shared<sched::ConstantProfile>(1.0));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stressor.stop();
  EXPECT_GT(stressor.total_gemms(), 0u);
}

}  // namespace
}  // namespace fs2::gpu
