// Cross-module integration tests: the full pipelines a user exercises.
//
//  * workload -> JIT -> threads -> metrics (the real stress path)
//  * workload -> analysis -> simulator -> metrics -> NSGA-II (tuning path)
//  * AVX-512 end to end (detection, compilation, execution, dump)
//  * the reproduced paper workflow: optimize at a frequency, re-evaluate
//    the optimum elsewhere

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "arch/cpuid.hpp"
#include "arch/processor.hpp"
#include "firestarter/backends.hpp"
#include "kernel/register_dump.hpp"
#include "kernel/thread_manager.hpp"
#include "metrics/ipc_estimate.hpp"
#include "metrics/measurement.hpp"
#include "payload/compiler.hpp"
#include "payload/mix.hpp"
#include "tuning/nsga2.hpp"

namespace fs2 {
namespace {

bool host_supports(const payload::InstructionMix& mix) {
  return arch::host_identity().features.covers(mix.required);
}

payload::CompileOptions fast_options(std::uint32_t unroll = 128) {
  payload::CompileOptions options;
  options.unroll = unroll;
  options.ram_region_bytes = 1 << 20;
  return options;
}

TEST(Integration, StressRunWithEstimatedIpcMetric) {
  const auto& fn = payload::find_function("FUNC_FMA_256_ZEN2");
  if (!host_supports(fn.mix)) GTEST_SKIP() << "host lacks FMA";
  auto workload = payload::compile_payload(
      fn.mix, payload::InstructionGroups::parse("REG:4,L1_LS:2"), arch::CacheHierarchy::zen2(),
      fast_options());

  kernel::RunOptions run;
  run.cpus = {-1, -1};
  kernel::ThreadManager manager(workload, run);
  metrics::IpcEstimateMetric ipc([&manager] { return manager.total_iterations(); },
                                 workload.stats().instructions_per_iteration, 2000.0, 2);
  metrics::TimeSeries series(ipc.name(), ipc.unit(), 0.0, 0.0);

  manager.start();
  ipc.begin();
  for (int i = 0; i < 6; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    series.add(0.04 * (i + 1), ipc.sample());
  }
  manager.stop();

  const auto summary = series.summarize();
  EXPECT_GT(summary.mean, 0.1);   // real work happened
  EXPECT_LT(summary.mean, 16.0);  // and the estimate is in a plausible band
}

TEST(Integration, Avx512PayloadEndToEnd) {
  const auto& fn = payload::find_function("FUNC_AVX512_512_GENERIC");
  if (!host_supports(fn.mix)) GTEST_SKIP() << "host lacks AVX-512F";
  payload::CompileOptions options = fast_options(64);
  options.dump_registers = true;
  auto workload = payload::compile_payload(
      fn.mix, payload::InstructionGroups::parse("REG:2,L1_LS:2,L2_L:1"),
      arch::CacheHierarchy::zen2(), options);
  EXPECT_EQ(workload.stats().vector_doubles, 8);
  EXPECT_EQ(workload.stats().flops_per_iteration % 16, 0u);  // 512-bit FMA = 16 flops

  kernel::RunOptions run;
  run.cpus = {-1};
  kernel::ThreadManager manager(workload, run);
  manager.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  manager.stop();
  EXPECT_GT(manager.total_iterations(), 100u);

  const auto snapshot = kernel::capture_registers(manager);
  EXPECT_EQ(snapshot.lanes, 8u);
  EXPECT_EQ(snapshot.values[0].size(), 11u * 8);
  EXPECT_FALSE(kernel::has_invalid_values(snapshot));
}

TEST(Integration, HostSelectionPrefersWidestMix) {
  // On this CI host (AVX-512F capable) the auto-selected function must be
  // the 512-bit one; on narrower hosts the check degrades gracefully.
  const auto host = arch::detect_host();
  const auto& fn = payload::select_function(host);
  if (host.features.avx512f && host.microarch == arch::Microarch::kGeneric) {
    EXPECT_EQ(fn.mix.isa, payload::IsaClass::kAvx512);
  }
  EXPECT_TRUE(host.features.covers(fn.mix.required));
}

TEST(Integration, OptimizeThenCrossEvaluate) {
  // The Fig. 12 workflow in miniature: tune at 1500 MHz on the simulator,
  // then verify the optimum beats the default workload at its training
  // point.
  sim::SimulatedSystem system(sim::MachineConfig::zen2_epyc7502_2s());
  sim::RunConditions cond;
  cond.freq_mhz = 1500;
  const auto& fn = payload::find_function("FUNC_FMA_256_ZEN2");
  firestarter::SimBackend backend(system, fn.mix, arch::CacheHierarchy::zen2(), cond, 5.0, 99);
  backend.preheat();
  tuning::GroupsProblem problem(backend);
  tuning::Nsga2Config config;
  config.individuals = 16;
  config.generations = 8;
  config.seed = 99;
  tuning::Nsga2 optimizer(config);
  const auto population = optimizer.run(problem);
  const auto& best = tuning::Nsga2::best_by_objective(population, 0);

  const double default_power =
      backend.evaluate(payload::InstructionGroups::parse(fn.default_groups))[0];
  EXPECT_GT(best.objectives[0], default_power * 0.95);
  // The optimum must actually be compilable and runnable end to end.
  const auto groups = tuning::GroupsProblem::to_groups(best.genome);
  if (host_supports(fn.mix)) {
    auto workload =
        payload::compile_payload(fn.mix, groups, arch::CacheHierarchy::zen2(), fast_options());
    auto buffer = workload.make_buffer();
    buffer->init(payload::DataInitPolicy::kSafe, 1);
    EXPECT_EQ(workload.fn()(&buffer->args(), 100), 100u);
  }
}

TEST(Integration, HostBackendEvaluatesRealCandidates) {
  // The real-hardware tuning path (Fig. 10 with host metrics): compile and
  // run two candidates, score them with the estimated-IPC metric.
  const auto& fn = payload::find_function("FUNC_FMA_256_ZEN2");
  if (!host_supports(fn.mix)) GTEST_SKIP() << "host lacks FMA";
  std::vector<firestarter::HostBackend::MetricFactory> factories;
  factories.push_back([](const payload::PayloadStats& stats, int workers,
                         firestarter::HostBackend::IterationCounter counter)
                          -> metrics::MetricPtr {
    return std::make_unique<metrics::IpcEstimateMetric>(
        std::move(counter), stats.instructions_per_iteration, 2000.0, workers);
  });
  firestarter::HostBackend backend(fn.mix, arch::CacheHierarchy::zen2(), {-1, -1},
                                   {"ipc-estimate"}, factories,
                                   /*candidate_duration_s=*/0.3, /*seed=*/5);
  const auto a = backend.evaluate(payload::InstructionGroups::parse("REG:1"));
  const auto b = backend.evaluate(payload::InstructionGroups::parse("REG:2,L1_LS:1"));
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_GT(a[0], 0.05);  // both candidates actually executed and scored
  EXPECT_GT(b[0], 0.05);
}

TEST(Integration, SimAndHostAgreeOnPayloadStats) {
  // analyze_payload (simulator path) and compile_payload (host path) must
  // report identical static statistics — the sim substitution hinges on it.
  const auto& fn = payload::find_function("FUNC_FMA_256_ZEN2");
  const auto groups = payload::InstructionGroups::parse("REG:4,L1_LS:2,L2_L:1,RAM_P:1");
  const auto caches = arch::CacheHierarchy::zen2();
  const auto analyzed = payload::analyze_payload(fn.mix, groups, caches, fast_options());
  if (!host_supports(fn.mix)) GTEST_SKIP() << "host lacks FMA";
  const auto compiled = payload::compile_payload(fn.mix, groups, caches, fast_options());
  EXPECT_EQ(analyzed.instructions_per_iteration,
            compiled.stats().instructions_per_iteration);
  EXPECT_EQ(analyzed.loop_bytes, compiled.stats().loop_bytes);
  EXPECT_EQ(analyzed.flops_per_iteration, compiled.stats().flops_per_iteration);
  EXPECT_EQ(analyzed.unroll, compiled.stats().unroll);
}

}  // namespace
}  // namespace fs2
