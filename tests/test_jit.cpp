// Tests for the from-scratch x86-64 JIT assembler (src/jit) — the AsmJit
// substitute FIRESTARTER 2's online workload generation rests on.
//
// Two layers of verification:
//  1. byte-exact encoding checks against hand-assembled reference sequences
//     (cross-checked with GNU as), covering REX/VEX/ModRM/SIB corner cases;
//  2. execution checks: JIT-compiled functions are actually run and their
//     results compared against the same computation done in C++.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "arch/cpuid.hpp"
#include "jit/assembler.hpp"
#include "jit/exec_memory.hpp"
#include "util/error.hpp"

namespace fs2::jit {
namespace {

std::vector<std::uint8_t> bytes(Assembler& a) { return a.finalize(); }

testing::AssertionResult encodes_to(Assembler& a, std::initializer_list<unsigned> expected) {
  const std::vector<std::uint8_t> code = bytes(a);
  std::vector<std::uint8_t> want;
  for (unsigned b : expected) want.push_back(static_cast<std::uint8_t>(b));
  if (code == want) return testing::AssertionSuccess();
  auto hex = [](const std::vector<std::uint8_t>& v) {
    std::string s;
    char buf[8];
    for (auto b : v) {
      snprintf(buf, sizeof buf, "%02x ", b);
      s += buf;
    }
    return s;
  };
  return testing::AssertionFailure() << "encoded: " << hex(code) << " expected: " << hex(want);
}

// ---- encoding: integer instructions -----------------------------------------

TEST(Encoding, MovImm64) {
  Assembler a;
  a.mov(Gp::rax, 42);
  EXPECT_TRUE(encodes_to(a, {0x48, 0xB8, 42, 0, 0, 0, 0, 0, 0, 0}));
}

TEST(Encoding, MovImm64HighRegister) {
  Assembler a;
  a.mov(Gp::r10, 0x1122334455667788ULL);
  EXPECT_TRUE(encodes_to(a, {0x49, 0xBA, 0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11}));
}

TEST(Encoding, MovRegReg) {
  Assembler a;
  a.mov(Gp::rdi, Gp::rsi);
  EXPECT_TRUE(encodes_to(a, {0x48, 0x89, 0xF7}));
}

TEST(Encoding, MovLoadNoDisp) {
  Assembler a;
  a.mov(Gp::rax, ptr(Gp::rdi, 8));
  EXPECT_TRUE(encodes_to(a, {0x48, 0x8B, 0x47, 0x08}));
}

TEST(Encoding, XorRegReg) {
  Assembler a;
  a.xor_(Gp::rax, Gp::rbx);
  EXPECT_TRUE(encodes_to(a, {0x48, 0x31, 0xD8}));
}

TEST(Encoding, ShlShr) {
  Assembler a;
  a.shl(Gp::rax, 5);
  a.shr(Gp::rax, 5);
  EXPECT_TRUE(encodes_to(a, {0x48, 0xC1, 0xE0, 0x05, 0x48, 0xC1, 0xE8, 0x05}));
}

TEST(Encoding, DecReg) {
  Assembler a;
  a.dec(Gp::rcx);
  EXPECT_TRUE(encodes_to(a, {0x48, 0xFF, 0xC9}));
}

TEST(Encoding, AddImm32) {
  Assembler a;
  a.add(Gp::r8, 0x40);
  EXPECT_TRUE(encodes_to(a, {0x49, 0x81, 0xC0, 0x40, 0, 0, 0}));
}

TEST(Encoding, AndImm32SignExtended) {
  Assembler a;
  a.and_(Gp::r8, ~0x4000);
  EXPECT_TRUE(encodes_to(a, {0x49, 0x81, 0xE0, 0xFF, 0xBF, 0xFF, 0xFF}));
}

TEST(Encoding, PushPopHighRegister) {
  Assembler a;
  a.push(Gp::r12);
  a.pop(Gp::r12);
  EXPECT_TRUE(encodes_to(a, {0x41, 0x54, 0x41, 0x5C}));
}

TEST(Encoding, PushPopLowRegisterNoRex) {
  Assembler a;
  a.push(Gp::rbx);
  a.pop(Gp::rbx);
  EXPECT_TRUE(encodes_to(a, {0x53, 0x5B}));
}

TEST(Encoding, TestRegReg) {
  Assembler a;
  a.test(Gp::rcx, Gp::rcx);
  EXPECT_TRUE(encodes_to(a, {0x48, 0x85, 0xC9}));
}

TEST(Encoding, Ret) {
  Assembler a;
  a.ret();
  EXPECT_TRUE(encodes_to(a, {0xC3}));
}

// ---- encoding: ModRM/SIB corner cases ----------------------------------------

TEST(Encoding, RspBaseNeedsSib) {
  Assembler a;
  a.mov(Gp::rax, ptr(Gp::rsp));
  EXPECT_TRUE(encodes_to(a, {0x48, 0x8B, 0x04, 0x24}));
}

TEST(Encoding, R12BaseNeedsSib) {
  Assembler a;
  a.mov(Gp::rax, ptr(Gp::r12));
  EXPECT_TRUE(encodes_to(a, {0x49, 0x8B, 0x04, 0x24}));
}

TEST(Encoding, RbpBaseNeedsDisp8) {
  Assembler a;
  a.mov(Gp::rax, ptr(Gp::rbp));
  EXPECT_TRUE(encodes_to(a, {0x48, 0x8B, 0x45, 0x00}));
}

TEST(Encoding, R13BaseNeedsDisp8) {
  Assembler a;
  a.mov(Gp::rax, ptr(Gp::r13));
  EXPECT_TRUE(encodes_to(a, {0x49, 0x8B, 0x45, 0x00}));
}

TEST(Encoding, Disp32Selected) {
  Assembler a;
  a.mov(Gp::rax, ptr(Gp::rdi, 0x1000));
  EXPECT_TRUE(encodes_to(a, {0x48, 0x8B, 0x87, 0x00, 0x10, 0x00, 0x00}));
}

TEST(Encoding, NegativeDisp8) {
  Assembler a;
  a.mov(Gp::rax, ptr(Gp::rdi, -8));
  EXPECT_TRUE(encodes_to(a, {0x48, 0x8B, 0x47, 0xF8}));
}

// ---- encoding: VEX instructions -----------------------------------------------

TEST(Encoding, VmovapdLoadTwoByteVex) {
  Assembler a;
  a.vmovapd(Ymm::ymm0, ptr(Gp::rax));
  EXPECT_TRUE(encodes_to(a, {0xC5, 0xFD, 0x28, 0x00}));
}

TEST(Encoding, VmovapdLoadHighBaseThreeByteVex) {
  Assembler a;
  a.vmovapd(Ymm::ymm1, ptr(Gp::r8, 0x40));
  EXPECT_TRUE(encodes_to(a, {0xC4, 0xC1, 0x7D, 0x28, 0x48, 0x40}));
}

TEST(Encoding, VmovapdStore) {
  Assembler a;
  a.vmovapd(ptr(Gp::rdi, 32), Ymm::ymm2);
  EXPECT_TRUE(encodes_to(a, {0xC5, 0xFD, 0x29, 0x57, 0x20}));
}

TEST(Encoding, Vfmadd231pdRegReg) {
  Assembler a;
  a.vfmadd231pd(Ymm::ymm0, Ymm::ymm1, Ymm::ymm2);
  EXPECT_TRUE(encodes_to(a, {0xC4, 0xE2, 0xF5, 0xB8, 0xC2}));
}

TEST(Encoding, Vfmadd231pdRegMem) {
  Assembler a;
  a.vfmadd231pd(Ymm::ymm3, Ymm::ymm12, ptr(Gp::r9, 0x80));
  // VEX.DDS.256.66.0F38.W1: C4, RXB=110 mmmmm=00010 -> 0xC2 (B set for r9),
  // W=1 ~vvvv=0011 L=1 pp=01 -> 0x9D, opcode B8, modrm mod10 reg011 rm001 +
  // disp32.
  EXPECT_TRUE(encodes_to(a, {0xC4, 0xC2, 0x9D, 0xB8, 0x99, 0x80, 0x00, 0x00, 0x00}));
}

TEST(Encoding, VaddpdVmulpd) {
  Assembler a;
  a.vaddpd(Ymm::ymm0, Ymm::ymm1, Ymm::ymm2);
  a.vmulpd(Ymm::ymm0, Ymm::ymm1, Ymm::ymm2);
  EXPECT_TRUE(encodes_to(a, {0xC5, 0xF5, 0x58, 0xC2, 0xC5, 0xF5, 0x59, 0xC2}));
}

TEST(Encoding, Vzeroupper) {
  Assembler a;
  a.vzeroupper();
  EXPECT_TRUE(encodes_to(a, {0xC5, 0xF8, 0x77}));
}

// ---- encoding: EVEX / AVX-512 -------------------------------------------------

TEST(Encoding, EvexVfmadd231pdRegReg) {
  Assembler a;
  a.vfmadd231pd(Zmm::zmm0, Zmm::zmm1, Zmm::zmm2);
  // EVEX.512.66.0F38.W1 B8 /r (cross-checked with GNU as).
  EXPECT_TRUE(encodes_to(a, {0x62, 0xF2, 0xF5, 0x48, 0xB8, 0xC2}));
}

TEST(Encoding, EvexVmovapdLoad) {
  Assembler a;
  a.vmovapd(Zmm::zmm0, ptr(Gp::rax));
  // EVEX.512.66.0F.W1 28 /r; the encoder always emits disp32 memory forms.
  EXPECT_TRUE(encodes_to(a, {0x62, 0xF1, 0xFD, 0x48, 0x28, 0x80, 0, 0, 0, 0}));
}

TEST(Encoding, EvexVmovapdStoreHighBase) {
  Assembler a;
  a.vmovapd(ptr(Gp::r9, 0x40), Zmm::zmm3);
  // B bit set for r9; reg=zmm3; disp32 = 0x40.
  EXPECT_TRUE(encodes_to(a, {0x62, 0xD1, 0xFD, 0x48, 0x29, 0x99, 0x40, 0, 0, 0}));
}

TEST(Encoding, EvexHighRegisterSetsRBit) {
  Assembler a;
  a.vmovapd(Zmm::zmm8, Zmm::zmm1);
  EXPECT_TRUE(encodes_to(a, {0x62, 0x71, 0xFD, 0x48, 0x28, 0xC1}));
}

bool host_has_avx512() { return arch::host_identity().features.avx512f; }

TEST(Execution, Avx512FmaComputesCorrectly) {
  if (!host_has_avx512()) GTEST_SKIP() << "host lacks AVX-512F";
  Assembler a;
  a.vmovapd(Zmm::zmm0, ptr(Gp::rdi));
  a.vmovapd(Zmm::zmm1, ptr(Gp::rsi));
  a.vfmadd231pd(Zmm::zmm0, Zmm::zmm1, ptr(Gp::rdx, 64));
  a.vmovapd(ptr(Gp::rcx), Zmm::zmm0);
  a.vzeroupper();
  a.ret();
  auto code = a.finalize();
  ExecutableBuffer buf{std::span<const std::uint8_t>(code)};
  alignas(64) double acc[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  alignas(64) double mul[8] = {2, 2, 2, 2, 0.5, 0.5, 0.5, 0.5};
  alignas(64) double mem[16] = {};
  for (int i = 0; i < 8; ++i) mem[8 + i] = 10.0 + i;
  alignas(64) double out[8];
  using Fma512Fn = void (*)(const double*, const double*, const double*, double*);
  buf.as<Fma512Fn>()(acc, mul, mem, out);
  for (int i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(out[i], acc[i] + mul[i] * mem[8 + i]) << i;
}

TEST(Execution, Avx512MulAdd) {
  if (!host_has_avx512()) GTEST_SKIP() << "host lacks AVX-512F";
  Assembler a;
  a.vmovapd(Zmm::zmm1, ptr(Gp::rdi));
  a.vmovapd(Zmm::zmm2, ptr(Gp::rsi));
  a.vmulpd(Zmm::zmm3, Zmm::zmm1, Zmm::zmm2);
  a.vaddpd(Zmm::zmm3, Zmm::zmm3, Zmm::zmm1);
  a.vmovapd(ptr(Gp::rdx), Zmm::zmm3);
  a.vzeroupper();
  a.ret();
  auto code = a.finalize();
  ExecutableBuffer buf{std::span<const std::uint8_t>(code)};
  alignas(64) double x[8], y[8], out[8];
  for (int i = 0; i < 8; ++i) {
    x[i] = 1.5 * i - 3.0;
    y[i] = 0.25 * i + 1.0;
  }
  using MulAddFn = void (*)(const double*, const double*, double*);
  buf.as<MulAddFn>()(x, y, out);
  for (int i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(out[i], x[i] * y[i] + x[i]) << i;
}

// ---- encoding: SSE2 and prefetch ------------------------------------------------

TEST(Encoding, MovapdLoadSse) {
  Assembler a;
  a.movapd(Xmm::xmm2, ptr(Gp::rsi));
  EXPECT_TRUE(encodes_to(a, {0x66, 0x0F, 0x28, 0x16}));
}

TEST(Encoding, MulpdAddpdRegReg) {
  Assembler a;
  a.mulpd(Xmm::xmm0, Xmm::xmm1);
  a.addpd(Xmm::xmm0, Xmm::xmm1);
  EXPECT_TRUE(encodes_to(a, {0x66, 0x0F, 0x59, 0xC1, 0x66, 0x0F, 0x58, 0xC1}));
}

TEST(Encoding, PrefetchHints) {
  Assembler a;
  a.prefetch(ptr(Gp::rbx), PrefetchHint::nta);
  a.prefetch(ptr(Gp::rbx), PrefetchHint::t0);
  a.prefetch(ptr(Gp::rbx), PrefetchHint::t2);
  EXPECT_TRUE(encodes_to(a, {0x0F, 0x18, 0x03, 0x0F, 0x18, 0x0B, 0x0F, 0x18, 0x1B}));
}

TEST(Encoding, NopSequences) {
  Assembler a;
  a.nop(1);
  a.nop(2);
  a.nop(3);
  EXPECT_TRUE(encodes_to(a, {0x90, 0x66, 0x90, 0x0F, 0x1F, 0x00}));
}

TEST(Encoding, AlignPadsToBoundary) {
  Assembler a;
  a.ret();
  a.align(16);
  EXPECT_EQ(a.size(), 16u);
}

TEST(Encoding, AlignOnBoundaryIsNoop) {
  Assembler a;
  a.align(16);
  EXPECT_EQ(a.size(), 0u);
}

// ---- labels -----------------------------------------------------------------------

TEST(Labels, BackwardBranchRel32) {
  Assembler a;
  Label top = a.new_label();
  a.bind(top);
  a.dec(Gp::rcx);
  a.jnz(top);
  // dec = 3 bytes, jnz = 6 bytes; rel32 = 0 - 9 = -9.
  EXPECT_TRUE(encodes_to(a, {0x48, 0xFF, 0xC9, 0x0F, 0x85, 0xF7, 0xFF, 0xFF, 0xFF}));
}

TEST(Labels, ForwardBranchPatched) {
  Assembler a;
  Label skip = a.new_label();
  a.jmp(skip);
  a.nop(3);
  a.bind(skip);
  a.ret();
  EXPECT_TRUE(encodes_to(a, {0xE9, 0x03, 0x00, 0x00, 0x00, 0x0F, 0x1F, 0x00, 0xC3}));
}

TEST(Labels, UnboundLabelThrowsOnFinalize) {
  Assembler a;
  Label missing = a.new_label();
  a.jmp(missing);
  EXPECT_THROW(a.finalize(), Error);
}

TEST(Labels, DoubleBindThrows) {
  Assembler a;
  Label l = a.new_label();
  a.bind(l);
  EXPECT_THROW(a.bind(l), Error);
}

// ---- executable memory --------------------------------------------------------------

TEST(ExecMemory, EmptyCodeRejected) {
  std::vector<std::uint8_t> empty;
  EXPECT_THROW(ExecutableBuffer{std::span<const std::uint8_t>(empty)}, Error);
}

TEST(ExecMemory, MoveTransfersOwnership) {
  Assembler a;
  a.mov(Gp::rax, 7);
  a.ret();
  auto code = a.finalize();
  ExecutableBuffer buf{std::span<const std::uint8_t>(code)};
  const void* entry = buf.entry();
  ExecutableBuffer moved = std::move(buf);
  EXPECT_EQ(moved.entry(), entry);
  EXPECT_EQ(moved.as<std::uint64_t (*)()>()(), 7u);
}

// ---- execution ------------------------------------------------------------------------

using Fn0 = std::uint64_t (*)();
using Fn1 = std::uint64_t (*)(std::uint64_t);
using Fn2 = std::uint64_t (*)(std::uint64_t, std::uint64_t);

ExecutableBuffer compile(Assembler& a) {
  auto code = a.finalize();
  return ExecutableBuffer{std::span<const std::uint8_t>(code)};
}

TEST(Execution, ReturnConstant) {
  Assembler a;
  a.mov(Gp::rax, 0xDEADBEEFCAFEULL);
  a.ret();
  EXPECT_EQ(compile(a).as<Fn0>()(), 0xDEADBEEFCAFEULL);
}

TEST(Execution, CountdownLoop) {
  Assembler a;
  Label top = a.new_label();
  a.mov(Gp::rax, std::uint64_t{0});
  a.mov(Gp::rcx, Gp::rdi);
  a.bind(top);
  a.add(Gp::rax, 3);
  a.dec(Gp::rcx);
  a.jnz(top);
  a.ret();
  auto buf = compile(a);
  EXPECT_EQ(buf.as<Fn1>()(1), 3u);
  EXPECT_EQ(buf.as<Fn1>()(1000), 3000u);
}

TEST(Execution, XorShiftToggle) {
  Assembler a;
  // rax = rdi ^ rsi, shifted left once then right once == rdi ^ rsi.
  a.mov(Gp::rax, Gp::rdi);
  a.xor_(Gp::rax, Gp::rsi);
  a.shl(Gp::rax, 1);
  a.shr(Gp::rax, 1);
  a.ret();
  auto buf = compile(a);
  EXPECT_EQ(buf.as<Fn2>()(0x5555555555555555ULL, 0x2AAAAAAAAAAAAAAAULL),
            0x7FFFFFFFFFFFFFFFULL);
}

TEST(Execution, LoadStoreRoundTrip) {
  Assembler a;
  // *(rsi) = *(rdi); return *(rsi).
  a.mov(Gp::rax, ptr(Gp::rdi));
  a.mov(ptr(Gp::rsi), Gp::rax);
  a.mov(Gp::rax, ptr(Gp::rsi));
  a.ret();
  auto buf = compile(a);
  std::uint64_t src = 0x123456789ABCDEF0ULL;
  std::uint64_t dst = 0;
  using CopyFn = std::uint64_t (*)(std::uint64_t*, std::uint64_t*);
  EXPECT_EQ(buf.as<CopyFn>()(&src, &dst), src);
  EXPECT_EQ(dst, src);
}

TEST(Execution, AndMaskWrapsCursor) {
  // The exact wrap idiom the payload compiler emits: cursor advances by 64
  // and the region-size bit is cleared.
  Assembler a;
  a.mov(Gp::rax, Gp::rdi);
  a.add(Gp::rax, 64);
  a.and_(Gp::rax, ~std::int32_t{0x1000});
  a.ret();
  auto buf = compile(a);
  // Below the boundary: no change beyond the add.
  EXPECT_EQ(buf.as<Fn1>()(0x200000), 0x200040u);
  // Crossing the boundary: wraps back to the region base.
  EXPECT_EQ(buf.as<Fn1>()(0x200FC0), 0x200000u);
}

TEST(Execution, Sse2MulAdd) {
  Assembler a;
  // xmm0 = [rdi]; xmm0 *= [rsi]; xmm0 += [rdx]; store to [rcx].
  a.movapd(Xmm::xmm0, ptr(Gp::rdi));
  a.mulpd(Xmm::xmm0, ptr(Gp::rsi));
  a.addpd(Xmm::xmm0, ptr(Gp::rdx));
  a.movapd(ptr(Gp::rcx), Xmm::xmm0);
  a.ret();
  auto buf = compile(a);
  alignas(16) double x[2] = {1.5, -2.0};
  alignas(16) double y[2] = {4.0, 0.5};
  alignas(16) double z[2] = {0.25, 10.0};
  alignas(16) double out[2] = {0, 0};
  using SseFn = void (*)(const double*, const double*, const double*, double*);
  buf.as<SseFn>()(x, y, z, out);
  EXPECT_DOUBLE_EQ(out[0], 1.5 * 4.0 + 0.25);
  EXPECT_DOUBLE_EQ(out[1], -2.0 * 0.5 + 10.0);
}

bool host_has_avx2_fma() {
  const auto& f = arch::host_identity().features;
  return f.avx && f.avx2 && f.fma;
}

TEST(Execution, AvxFmaComputesCorrectly) {
  if (!host_has_avx2_fma()) GTEST_SKIP() << "host lacks AVX2+FMA";
  Assembler a;
  // ymm0 = [rdi]; ymm1 = [rsi]; ymm2 = [rdx]; ymm0 += ymm1*ymm2; store [rcx].
  a.vmovapd(Ymm::ymm0, ptr(Gp::rdi));
  a.vmovapd(Ymm::ymm1, ptr(Gp::rsi));
  a.vmovapd(Ymm::ymm2, ptr(Gp::rdx));
  a.vfmadd231pd(Ymm::ymm0, Ymm::ymm1, Ymm::ymm2);
  a.vmovapd(ptr(Gp::rcx), Ymm::ymm0);
  a.vzeroupper();
  a.ret();
  auto buf = compile(a);
  alignas(32) double acc[4] = {1.0, 2.0, 3.0, 4.0};
  alignas(32) double mul1[4] = {0.5, -1.0, 2.0, 0.0};
  alignas(32) double mul2[4] = {8.0, 8.0, -0.5, 123.0};
  alignas(32) double out[4];
  using FmaFn = void (*)(const double*, const double*, const double*, double*);
  buf.as<FmaFn>()(acc, mul1, mul2, out);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(out[i], acc[i] + mul1[i] * mul2[i]) << i;
}

TEST(Execution, AvxFmaMemoryOperand) {
  if (!host_has_avx2_fma()) GTEST_SKIP() << "host lacks AVX2+FMA";
  Assembler a;
  a.vmovapd(Ymm::ymm0, ptr(Gp::rdi));
  a.vmovapd(Ymm::ymm1, ptr(Gp::rsi));
  a.vfmadd231pd(Ymm::ymm0, Ymm::ymm1, ptr(Gp::rdx, 32));
  a.vmovapd(ptr(Gp::rcx), Ymm::ymm0);
  a.vzeroupper();
  a.ret();
  auto buf = compile(a);
  alignas(32) double acc[4] = {1, 1, 1, 1};
  alignas(32) double mul[4] = {2, 3, 4, 5};
  alignas(32) double mem[8] = {0, 0, 0, 0, 10, 20, 30, 40};
  alignas(32) double out[4];
  using FmaFn = void (*)(const double*, const double*, const double*, double*);
  buf.as<FmaFn>()(acc, mul, mem, out);
  EXPECT_DOUBLE_EQ(out[0], 1 + 2 * 10.0);
  EXPECT_DOUBLE_EQ(out[3], 1 + 5 * 40.0);
}

TEST(Execution, ForwardJumpSkipsCode) {
  Assembler a;
  Label skip = a.new_label();
  a.mov(Gp::rax, std::uint64_t{1});
  a.test(Gp::rdi, Gp::rdi);
  a.jz(skip);
  a.mov(Gp::rax, std::uint64_t{2});
  a.bind(skip);
  a.ret();
  auto buf = compile(a);
  EXPECT_EQ(buf.as<Fn1>()(0), 1u);
  EXPECT_EQ(buf.as<Fn1>()(5), 2u);
}

// Parameterized sweep: every GP register encodes a round-trippable
// mov-imm/ret pair and executes correctly (except rsp, which we never
// clobber in generated code).
class GpRegisterSweep : public testing::TestWithParam<unsigned> {};

TEST_P(GpRegisterSweep, MovImmThenMovToRaxExecutes) {
  const Gp reg = gp(GetParam());
  if (reg == Gp::rsp) GTEST_SKIP() << "rsp is the stack pointer";
  Assembler a;
  const bool callee_saved = is_callee_saved(reg);
  if (callee_saved) a.push(reg);
  a.mov(reg, 0xABCD000000000000ULL + GetParam());
  a.mov(Gp::rax, reg);
  if (callee_saved) a.pop(reg);
  a.ret();
  auto buf = compile(a);
  EXPECT_EQ(buf.as<Fn0>()(), 0xABCD000000000000ULL + GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllGpRegisters, GpRegisterSweep, testing::Range(0u, 16u));

// Parameterized sweep: vmovapd load/store round-trips through every YMM
// register.
class YmmRegisterSweep : public testing::TestWithParam<unsigned> {};

TEST_P(YmmRegisterSweep, LoadStoreRoundTrip) {
  if (!host_has_avx2_fma()) GTEST_SKIP() << "host lacks AVX2+FMA";
  Assembler a;
  const Ymm reg = ymm(GetParam());
  a.vmovapd(reg, ptr(Gp::rdi));
  a.vmovapd(ptr(Gp::rsi), reg);
  a.vzeroupper();
  a.ret();
  auto buf = compile(a);
  alignas(32) double in[4] = {1.0 + GetParam(), -2.0, 3.5, 1e300};
  alignas(32) double out[4] = {0, 0, 0, 0};
  using MoveFn = void (*)(const double*, double*);
  buf.as<MoveFn>()(in, out);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(out[i], in[i]) << i;
}

INSTANTIATE_TEST_SUITE_P(AllYmmRegisters, YmmRegisterSweep, testing::Range(0u, 16u));

}  // namespace
}  // namespace fs2::jit
