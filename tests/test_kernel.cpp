// Tests for the kernel runtime: worker threads actually execute JIT'd
// payloads with pinning and duty-cycling, the register dump captures SIMD
// state, and the watchdog enforces -t.

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <thread>

#include "arch/cpuid.hpp"
#include "kernel/register_dump.hpp"
#include "kernel/selftest.hpp"
#include "kernel/thread_manager.hpp"
#include "kernel/watchdog.hpp"
#include "payload/mix.hpp"
#include "util/error.hpp"

namespace fs2::kernel {
namespace {

bool host_has_fma() {
  return arch::host_identity().features.covers(
      payload::find_function("FUNC_FMA_256_ZEN2").mix.required);
}

payload::CompiledPayload small_payload(bool dump = false) {
  payload::CompileOptions options;
  options.unroll = 64;
  options.ram_region_bytes = 1 << 20;
  options.dump_registers = dump;
  const auto& fn = payload::find_function("FUNC_FMA_256_ZEN2");
  return payload::compile_payload(fn.mix, payload::InstructionGroups::parse("REG:2,L1_L:1"),
                                  arch::CacheHierarchy::zen2(), options);
}

RunOptions two_workers(double load = 1.0) {
  RunOptions options;
  options.cpus = {-1, -1};  // unpinned: CI containers restrict affinity
  options.load = load;
  return options;
}

TEST(ThreadManager, RunsAndCountsIterations) {
  if (!host_has_fma()) GTEST_SKIP() << "host lacks FMA";
  auto payload = small_payload();
  ThreadManager manager(payload, two_workers());
  EXPECT_EQ(manager.num_workers(), 2u);
  EXPECT_EQ(manager.total_iterations(), 0u);
  manager.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  manager.stop();
  EXPECT_GT(manager.total_iterations(), 1000u);
}

TEST(ThreadManager, StopIsIdempotentAndFast) {
  if (!host_has_fma()) GTEST_SKIP() << "host lacks FMA";
  auto payload = small_payload();
  ThreadManager manager(payload, two_workers());
  manager.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto t0 = std::chrono::steady_clock::now();
  manager.stop();
  manager.stop();
  const double stop_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_LT(stop_s, 1.0);  // chunked execution keeps stop responsive
}

TEST(ThreadManager, StopWithoutStartJoinsCleanly) {
  if (!host_has_fma()) GTEST_SKIP() << "host lacks FMA";
  auto payload = small_payload();
  ThreadManager manager(payload, two_workers());
  manager.stop();
  EXPECT_EQ(manager.total_iterations(), 0u);
}

TEST(ThreadManager, DutyCycleReducesThroughput) {
  if (!host_has_fma()) GTEST_SKIP() << "host lacks FMA";
  auto payload = small_payload();
  auto run_with_load = [&](double load) {
    RunOptions options = two_workers(load);
    options.period_s = 0.04;
    ThreadManager manager(payload, options);
    manager.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    manager.stop();
    return manager.total_iterations();
  };
  const auto full = run_with_load(1.0);
  const auto half = run_with_load(0.5);
  // 50 % duty cycle should land well below full throughput (generous margin
  // for scheduler noise).
  EXPECT_LT(static_cast<double>(half), static_cast<double>(full) * 0.85);
}

TEST(ThreadManager, ValidatesOptions) {
  if (!host_has_fma()) GTEST_SKIP() << "host lacks FMA";
  auto payload = small_payload();
  RunOptions no_cpus;
  EXPECT_THROW(ThreadManager(payload, no_cpus), Error);
  RunOptions bad_load = two_workers(1.5);
  EXPECT_THROW(ThreadManager(payload, bad_load), Error);
}

TEST(RegisterDump, CaptureAndFormat) {
  if (!host_has_fma()) GTEST_SKIP() << "host lacks FMA";
  auto payload = small_payload(/*dump=*/true);
  ThreadManager manager(payload, two_workers());
  manager.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  manager.stop();
  const RegisterSnapshot snapshot = capture_registers(manager);
  ASSERT_EQ(snapshot.values.size(), 2u);
  EXPECT_EQ(snapshot.values[0].size(), 44u);  // 11 accumulators x 4 lanes
  EXPECT_FALSE(has_invalid_values(snapshot));

  std::ostringstream out;
  write_dump(out, snapshot);
  EXPECT_NE(out.str().find("worker 0:"), std::string::npos);
  EXPECT_NE(out.str().find("ymm10"), std::string::npos);
}

TEST(RegisterDump, DivergenceDetection) {
  RegisterSnapshot a, b;
  a.values = {{1.0, 2.0, 3.0}};
  b.values = {{1.0, 2.5, 3.0}};
  const auto diverging = diverging_values(a, b);
  ASSERT_EQ(diverging.size(), 1u);
  EXPECT_EQ(diverging[0], 1u);
  EXPECT_TRUE(diverging_values(a, a).empty());
}

TEST(RegisterDump, InvalidValueDetection) {
  RegisterSnapshot inf_snapshot;
  inf_snapshot.values = {{1.0, std::numeric_limits<double>::infinity()}};
  EXPECT_TRUE(has_invalid_values(inf_snapshot));
  RegisterSnapshot denormal;
  denormal.values = {{1e-320}};
  EXPECT_TRUE(has_invalid_values(denormal));
  RegisterSnapshot fine;
  fine.values = {{1.5, -2.25, 0.0}};
  EXPECT_FALSE(has_invalid_values(fine));
}

TEST(Selftest, PassesOnHealthyHardware) {
  if (!host_has_fma()) GTEST_SKIP() << "host lacks FMA";
  auto payload = small_payload(/*dump=*/true);
  const SelftestResult result = run_selftest(payload, {-1, -1, -1}, 20000, 7);
  EXPECT_TRUE(result.passed) << result.describe();
  EXPECT_EQ(result.workers, 3u);
  EXPECT_EQ(result.iterations, 20000u);
  EXPECT_TRUE(result.diverging_workers.empty());
  EXPECT_FALSE(result.invalid_values);
  EXPECT_NE(result.describe().find("PASS"), std::string::npos);
}

TEST(Selftest, DeterministicAcrossInvocations) {
  if (!host_has_fma()) GTEST_SKIP() << "host lacks FMA";
  auto payload = small_payload(/*dump=*/true);
  // Two full self-test rounds must agree with themselves and each other.
  EXPECT_TRUE(run_selftest(payload, {-1, -1}, 5000, 3).passed);
  EXPECT_TRUE(run_selftest(payload, {-1, -1}, 5000, 3).passed);
}

TEST(Selftest, ValidatesArguments) {
  if (!host_has_fma()) GTEST_SKIP() << "host lacks FMA";
  auto payload = small_payload(/*dump=*/true);
  EXPECT_THROW(run_selftest(payload, {}, 100, 1), Error);
  EXPECT_THROW(run_selftest(payload, {-1}, 0, 1), Error);
}

TEST(Selftest, RejectsPayloadWithoutDump) {
  if (!host_has_fma()) GTEST_SKIP() << "host lacks FMA";
  auto payload = small_payload(/*dump=*/false);
  EXPECT_THROW(run_selftest(payload, {-1}, 100, 1), Error);
}

TEST(Selftest, FailureDescriptionNamesWorkers) {
  SelftestResult result;
  result.workers = 4;
  result.iterations = 10;
  result.diverging_workers = {2, 3};
  EXPECT_NE(result.describe().find("2,3"), std::string::npos);
  result.diverging_workers.clear();
  result.invalid_values = true;
  EXPECT_NE(result.describe().find("non-finite"), std::string::npos);
}

TEST(Watchdog, FiresAfterTimeout) {
  Watchdog watchdog;
  std::atomic<bool> fired{false};
  watchdog.arm(std::chrono::milliseconds(30), [&fired] { fired.store(true); });
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_TRUE(fired.load());
  EXPECT_TRUE(watchdog.fired());
}

TEST(Watchdog, CancelPreventsFiring) {
  Watchdog watchdog;
  std::atomic<bool> fired{false};
  watchdog.arm(std::chrono::milliseconds(80), [&fired] { fired.store(true); });
  watchdog.cancel();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_FALSE(fired.load());
  EXPECT_FALSE(watchdog.fired());
}

TEST(Watchdog, RearmReplacesTimer) {
  Watchdog watchdog;
  std::atomic<int> count{0};
  watchdog.arm(std::chrono::milliseconds(20), [&count] { ++count; });
  watchdog.arm(std::chrono::milliseconds(20), [&count] { ++count; });
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_EQ(count.load(), 1);  // the first timer was torn down before firing
}

}  // namespace
}  // namespace fs2::kernel
