// Tests for the metric framework: measurement windows with start/stop-delta
// trimming, RAPL sysfs parsing against fixture trees (including counter
// wraparound), the perf/estimate IPC pair, external plugin and command
// metrics, and the simulated power meter.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "metrics/external.hpp"
#include "metrics/hw_events.hpp"
#include "metrics/ipc_estimate.hpp"
#include "metrics/measurement.hpp"
#include "metrics/perf_ipc.hpp"
#include "metrics/rapl.hpp"
#include "metrics/sim_metrics.hpp"
#include "payload/mix.hpp"
#include "util/error.hpp"

namespace fs2::metrics {
namespace {

namespace fs = std::filesystem;

// ---- measurement windows ------------------------------------------------------

TEST(TimeSeries, TrimmingMatchesPaperSemantics) {
  // Sec. III-D: average over the runtime excluding start/stop deltas. The
  // window streams one-pass, so the deltas bind when it opens.
  TimeSeries series("power", "W", /*start_delta_s=*/10.0, /*stop_delta_s=*/2.0);
  for (int t = 0; t <= 100; ++t) series.add(t, t < 10 ? 1000.0 : 300.0);
  const Summary summary = series.summarize();
  EXPECT_DOUBLE_EQ(summary.mean, 300.0);  // warm-up spike trimmed away
  EXPECT_EQ(summary.samples, 89u);        // t in [10, 98]
  EXPECT_DOUBLE_EQ(summary.p50, 300.0);   // constant plateau: all quantiles agree
  EXPECT_DOUBLE_EQ(summary.p99, 300.0);
  EXPECT_EQ(summary.name, "power");
  EXPECT_EQ(summary.unit, "W");
}

TEST(TimeSeries, OverTrimmingFallsBackToUntrimmedAggregate) {
  // A run shorter than start+stop deltas must not abort a smoke run; the
  // summary degrades to the untrimmed aggregate (with a logged warning).
  TimeSeries series("x", "u", 5.0, 5.0);
  series.add(0.0, 1.0);
  series.add(1.0, 2.0);
  const Summary summary = series.summarize();
  EXPECT_EQ(summary.samples, 2u);
  EXPECT_DOUBLE_EQ(summary.mean, 1.5);
}

TEST(TimeSeries, EmptySeriesThrows) {
  TimeSeries series("x", "u", 0.0, 0.0);
  EXPECT_THROW(series.summarize(), Error);
}

TEST(TimeSeries, CsvOutputFormat) {
  TimeSeries series("power", "W", 0.0, 0.0);
  series.add(0.0, 100.0);
  series.add(1.0, 200.0);
  std::ostringstream out;
  print_csv(out, {series.summarize()});
  const std::string text = out.str();
  EXPECT_NE(text.find("metric,unit,samples,mean,stddev,min,max,p50,p95,p99,phase"),
            std::string::npos);
  EXPECT_NE(text.find("power,W,2,150.0000"), std::string::npos);
}

// ---- RAPL -------------------------------------------------------------------------

class RaplFixture : public testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("fs2_rapl_" + std::string(
                               testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  void add_domain(const std::string& dir, const std::string& name, std::uint64_t energy_uj,
                  std::uint64_t range_uj = 262143328850ull) {
    const fs::path d = root_ / "class" / "powercap" / dir;
    fs::create_directories(d);
    write(d / "name", name);
    write(d / "energy_uj", std::to_string(energy_uj));
    write(d / "max_energy_range_uj", std::to_string(range_uj));
  }

  void set_energy(const std::string& dir, std::uint64_t energy_uj) {
    write(root_ / "class" / "powercap" / dir / "energy_uj", std::to_string(energy_uj));
  }

  static void write(const fs::path& path, const std::string& text) {
    std::ofstream out(path);
    out << text << "\n";
  }

  fs::path root_;
};

TEST_F(RaplFixture, FindsPackageDomainsOnly) {
  add_domain("intel-rapl:0", "package-0", 1000);
  add_domain("intel-rapl:1", "package-1", 2000);
  add_domain("intel-rapl:0:0", "dram", 500);   // subdomain: must be ignored
  add_domain("intel-rapl:0:1", "core", 300);   // subdomain: must be ignored
  RaplReader reader(root_.string());
  ASSERT_TRUE(reader.available());
  EXPECT_EQ(reader.domains().size(), 2u);
  EXPECT_EQ(reader.read_total_uj(), 3000u);
}

TEST_F(RaplFixture, MissingTreeIsUnavailable) {
  RaplReader reader(root_.string());
  EXPECT_FALSE(reader.available());
  RaplPowerMetric metric(root_.string());
  EXPECT_FALSE(metric.available());
}

TEST_F(RaplFixture, PowerFromEnergyDeltas) {
  add_domain("intel-rapl:0", "package-0", 1'000'000);
  RaplPowerMetric metric(root_.string());
  ASSERT_TRUE(metric.available());
  metric.begin();
  // 0.2 J over ~20 ms -> ~10 W. Use generous bounds: the clock is real.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  set_energy("intel-rapl:0", 1'200'000);
  const double watts = metric.sample();
  EXPECT_GT(watts, 1.0);
  EXPECT_LT(watts, 25.0);
}

TEST_F(RaplFixture, WraparoundCorrected) {
  add_domain("intel-rapl:0", "package-0", 1000, /*range=*/10'000'000);
  RaplPowerMetric metric(root_.string());
  metric.begin();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  set_energy("intel-rapl:0", 500);  // counter wrapped past 10 J
  const double watts = metric.sample();
  // Delta = 500 + 10'000'000 - 1000 ~ 10 J over ~10 ms: large but positive.
  EXPECT_GT(watts, 0.0);
}

// ---- perf + estimate ------------------------------------------------------------------

TEST(PerfIpc, GracefulWhetherAvailableOrNot) {
  PerfIpcMetric metric;
  if (!metric.available()) {
    EXPECT_EQ(metric.sample(), 0.0);  // must not crash or throw
    return;
  }
  metric.begin();
  // Burn some instructions so the counters move.
  volatile std::uint64_t x = 1;
  for (int i = 0; i < 2'000'000; ++i) x = x + static_cast<std::uint64_t>(i);
  const double ipc = metric.sample();
  EXPECT_GT(ipc, 0.0);
  EXPECT_LT(ipc, 10.0);
}

TEST(IpcEstimate, ComputesFromLoopCounter) {
  std::atomic<std::uint64_t> iterations{0};
  IpcEstimateMetric metric([&] { return iterations.load(); },
                           /*instr_per_iter=*/1000.0, /*assumed_mhz=*/2000.0, /*cores=*/2);
  ASSERT_TRUE(metric.available());
  metric.begin();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Pretend workers executed enough loops for IPC ~ 2.0 at 2 GHz x 2 cores:
  // instructions = dt * 2e9 * 2 * 2.0; iterations = instructions / 1000.
  iterations.store(static_cast<std::uint64_t>(0.05 * 2e9 * 2 * 2.0 / 1000.0));
  const double ipc = metric.sample();
  EXPECT_GT(ipc, 0.5);
  EXPECT_LT(ipc, 4.0);
}

TEST(IpcEstimate, ZeroWithoutProgress) {
  IpcEstimateMetric metric([] { return std::uint64_t{42}; }, 100.0, 2000.0, 1);
  metric.begin();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_DOUBLE_EQ(metric.sample(), 0.0);
}

TEST(IpcEstimate, ReconfigureChangesScale) {
  std::atomic<std::uint64_t> iterations{0};
  IpcEstimateMetric metric([&] { return iterations.load(); }, 1000.0, 2000.0, 1);
  metric.reconfigure(2000.0, 2000.0, 1);  // doubled instructions per loop
  metric.begin();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  iterations.store(10000);
  const double doubled = metric.sample();
  EXPECT_GT(doubled, 0.0);
}

// ---- external metrics -------------------------------------------------------------------

TEST(PluginMetric, LoadsFixturePlugin) {
  PluginMetric metric(FS2_TEST_PLUGIN_PATH);
  ASSERT_TRUE(metric.available());
  EXPECT_EQ(metric.name(), "fixture-power");
  EXPECT_EQ(metric.unit(), "W");
  metric.begin();
  const double first = metric.sample();
  const double second = metric.sample();
  EXPECT_DOUBLE_EQ(first, 100.0);
  EXPECT_DOUBLE_EQ(second, 101.0);
}

TEST(PluginMetric, MissingLibraryIsUnavailableNotFatal) {
  PluginMetric metric("/nonexistent/libmetric.so");
  EXPECT_FALSE(metric.available());
  EXPECT_EQ(metric.sample(), 0.0);
  EXPECT_NE(metric.name().find("plugin("), std::string::npos);
}

TEST(CommandMetric, ParsesCommandOutput) {
  CommandMetric metric("echo 42.5", "test-cmd", "W");
  ASSERT_TRUE(metric.available());
  EXPECT_DOUBLE_EQ(metric.sample(), 42.5);
}

TEST(CommandMetric, FailingCommandDegradesGracefully) {
  CommandMetric metric("false", "broken", "W");
  EXPECT_DOUBLE_EQ(metric.sample(), 0.0);
  EXPECT_FALSE(metric.available());  // degraded after first failure
  EXPECT_DOUBLE_EQ(metric.sample(), 0.0);
}

// ---- hardware events ------------------------------------------------------------------

TEST(HwEvents, NamedEventEncodings) {
  // The raw encodings from the AMD Family 17h PPR the paper cites.
  EXPECT_EQ(HwEvent::zen2_uops_from_decoder().config, 0x01AAu);
  EXPECT_EQ(HwEvent::zen2_uops_from_opcache().config, 0x02AAu);
  EXPECT_EQ(HwEvent::zen2_cycles_not_in_halt().config, 0x76u);
}

TEST(HwEvents, GroupGracefulWhetherAvailableOrNot) {
  HwEventGroup group({HwEvent::instructions(), HwEvent::cycles()});
  if (!group.available()) {
    EXPECT_EQ(group.read(), (std::vector<std::uint64_t>{0, 0}));
    return;
  }
  group.begin();
  volatile std::uint64_t x = 1;
  for (int i = 0; i < 500000; ++i) x = x + static_cast<std::uint64_t>(i);
  const auto values = group.read();
  EXPECT_GT(values[0], 100000u);  // instructions moved
  EXPECT_GT(values[1], 0u);       // cycles moved
}

TEST(HwEvents, RatioMetricBounded) {
  HwRatioMetric metric("test-ipc", HwEvent::instructions(), HwEvent::cycles());
  if (!metric.available()) {
    EXPECT_EQ(metric.sample(), 0.0);
    return;
  }
  metric.begin();
  volatile std::uint64_t x = 1;
  for (int i = 0; i < 500000; ++i) x = x + static_cast<std::uint64_t>(i);
  const double ratio = metric.sample();
  EXPECT_GT(ratio, 0.0);
  EXPECT_LT(ratio, 12.0);
}

TEST(HwEvents, UnknownRawEventIsUnavailableNotFatal) {
  // A nonsense raw event must not crash, just come back unavailable or
  // zero-counting depending on the PMU.
  HwEventGroup group({HwEvent{"bogus", 4 /*RAW*/, 0xDEAD}});
  (void)group.read();
  SUCCEED();
}

// ---- simulated metrics ----------------------------------------------------------------------

TEST(SimMetrics, TrackTheSimulatedSystemPoint) {
  sim::SimulatedSystem system(sim::MachineConfig::zen2_epyc7502_2s());
  const auto& mix = payload::find_function("FUNC_FMA_256_ZEN2").mix;
  const auto stats = payload::analyze_payload(
      mix, payload::InstructionGroups::parse("REG:1"), arch::CacheHierarchy::zen2());
  sim::RunConditions cond;
  cond.freq_mhz = 1500;
  system.set_point(system.simulator().run(stats, cond));

  SimPowerMetric power(&system, 7);
  SimIpcMetric ipc(&system);
  ASSERT_TRUE(power.available());
  ASSERT_TRUE(ipc.available());
  const double expected = system.point().power_w;
  // Noise is 0.4 %: a hundred samples all stay within 3 %.
  for (int i = 0; i < 100; ++i) EXPECT_NEAR(power.sample(), expected, expected * 0.03);
  EXPECT_DOUBLE_EQ(ipc.sample(), system.point().ipc_per_core);
}

TEST(SimMetrics, IdleBeforeAnyPointIsPublished) {
  sim::SimulatedSystem system(sim::MachineConfig::zen2_epyc7502_2s());
  EXPECT_DOUBLE_EQ(system.point().power_w, system.simulator().idle().power_w);
}

}  // namespace
}  // namespace fs2::metrics
