// Tests of the live metrics plane: log-bucketed histograms and their merge
// algebra, the kMetricUpdate delta protocol (tracker -> wire -> coordinator
// fold), the anomaly detector's alert rules, the flight recorder's bounded
// rings, the Prometheus exposition renderer, and two end-to-end loopback
// campaigns — one scraped over live HTTP mid-run, one with a node that goes
// silent and then dies so the flat-line and node-lost paths fire for real.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include "cluster/coordinator.hpp"
#include "cluster/exposition.hpp"
#include "cluster/messages.hpp"
#include "cluster/metrics_plane.hpp"
#include "cluster/transport.hpp"
#include "cluster/wire.hpp"
#include "firestarter/config.hpp"
#include "firestarter/firestarter.hpp"
#include "firestarter/sim_fleet.hpp"
#include "trace/flight_recorder.hpp"
#include "trace/metric_delta.hpp"
#include "trace/registry.hpp"
#include "trace/tracer.hpp"
#include "util/error.hpp"

namespace {

using namespace fs2;
using namespace fs2::cluster;

// ---- histogram --------------------------------------------------------------

TEST(Histogram, BucketsAreMonotonicAndClampAtEdges) {
  // The grid must be monotone so cumulative quantile walks make sense.
  double prev = 0.0;
  for (std::size_t i = 0; i < trace::Histogram::kBuckets; ++i) {
    const double upper = trace::Histogram::bucket_upper(i);
    EXPECT_GT(upper, prev) << "bucket " << i;
    prev = upper;
  }
  // Non-positive and NaN land in bucket 0 instead of corrupting the array.
  EXPECT_EQ(trace::Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(trace::Histogram::bucket_index(-1.0), 0u);
  EXPECT_EQ(trace::Histogram::bucket_index(std::nan("")), 0u);
  // Out-of-range magnitudes clamp to the edge buckets.
  EXPECT_EQ(trace::Histogram::bucket_index(1e-300), 0u);
  EXPECT_EQ(trace::Histogram::bucket_index(1e300), trace::Histogram::kBuckets - 1);
  // A value is never above its bucket's upper bound.
  for (double v : {1e-9, 3.7e-6, 0.25, 0.74, 0.76, 1.0, 512.0, 1.5e9}) {
    const std::size_t b = trace::Histogram::bucket_index(v);
    EXPECT_LE(v, trace::Histogram::bucket_upper(b)) << v;
    if (b > 0) EXPECT_GE(v, trace::Histogram::bucket_upper(b - 1)) << v;
  }
}

TEST(Histogram, QuantilesBracketTheDataAndClampToMax) {
  trace::Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  const trace::HistogramSnapshot snap = h.snapshot("h");
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_DOUBLE_EQ(snap.max, 1000.0);
  EXPECT_NEAR(snap.sum, 500500.0, 1e-6);
  // Log buckets are coarse (2 per octave) — the p50 bucket's upper bound
  // sits within one bucket width of the true median.
  const double p50 = snap.quantile(0.5);
  EXPECT_GE(p50, 500.0);
  EXPECT_LE(p50, 1000.0);
  EXPECT_LE(snap.quantile(0.5), snap.quantile(0.95));
  EXPECT_LE(snap.quantile(0.95), snap.quantile(0.99));
  // The top quantile clamps to the observed max, not the bucket bound.
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 1000.0);
  EXPECT_DOUBLE_EQ(trace::HistogramSnapshot{}.quantile(0.5), 0.0);
}

void expect_hist_equal(const trace::HistogramSnapshot& a,
                       const trace::HistogramSnapshot& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.max, b.max);
  EXPECT_NEAR(a.sum, b.sum, 1e-9 * (1.0 + std::abs(a.sum)));
  const std::size_t n = std::max(a.buckets.size(), b.buckets.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t av = i < a.buckets.size() ? a.buckets[i] : 0;
    const std::uint64_t bv = i < b.buckets.size() ? b.buckets[i] : 0;
    EXPECT_EQ(av, bv) << "bucket " << i;
  }
}

TEST(Histogram, MergeIsCommutativeAssociativeAndSplitInvariant) {
  trace::Histogram ha, hb, hc, whole;
  int k = 0;
  for (double v : {1e-6, 3e-4, 0.02, 0.02, 1.5, 88.0, 1e4, 2.5e7, 0.7, 0.8}) {
    (k % 3 == 0 ? ha : k % 3 == 1 ? hb : hc).record(v);
    whole.record(v);
    ++k;
  }
  const trace::HistogramSnapshot a = ha.snapshot("h");
  const trace::HistogramSnapshot b = hb.snapshot("h");
  const trace::HistogramSnapshot c = hc.snapshot("h");

  trace::HistogramSnapshot ab = a;
  ab.merge(b);
  trace::HistogramSnapshot ba = b;
  ba.merge(a);
  expect_hist_equal(ab, ba);  // merge(a,b) == merge(b,a)

  trace::HistogramSnapshot ab_c = ab;
  ab_c.merge(c);
  trace::HistogramSnapshot bc = b;
  bc.merge(c);
  trace::HistogramSnapshot a_bc = a;
  a_bc.merge(bc);
  expect_hist_equal(ab_c, a_bc);  // (a+b)+c == a+(b+c)

  // Splitting a stream across histograms and merging reproduces the whole.
  expect_hist_equal(ab_c, whole.snapshot("h"));
}

TEST(Registry, KindMismatchThrows) {
  trace::Registry reg;
  reg.counter("x");
  reg.gauge("g");
  reg.histogram("h");
  EXPECT_THROW(reg.histogram("x"), Error);
  EXPECT_THROW(reg.counter("g"), Error);
  EXPECT_THROW(reg.gauge("h"), Error);
  // Create-or-get returns the same instance.
  EXPECT_EQ(&reg.counter("x"), &reg.counter("x"));
  EXPECT_EQ(&reg.histogram("h"), &reg.histogram("h"));
}

// ---- kMetricUpdate wire + folding -------------------------------------------

TEST(MetricsPlane, MetricUpdateRoundTripsOnTheWire) {
  MetricUpdateMsg msg;
  msg.seq = 41;
  msg.t_agent_s = 12.75;
  msg.delta.defs = {{0, "a.count", trace::MetricKind::kCounter},
                    {1, "a.gauge", trace::MetricKind::kGauge},
                    {2, "a.hist", trace::MetricKind::kHistogram}};
  msg.delta.counters = {{0, 17}};
  msg.delta.gauges = {{1, -3.5}};
  trace::HistogramDeltaRec h;
  h.id = 2;
  h.count_delta = 3;
  h.sum_delta = 6.25;
  h.max = 4.0;
  h.buckets = {{63, 2}, {64, 1}};
  msg.delta.hists = {h};

  const Frame frame = msg.encode();
  EXPECT_EQ(frame.type, MessageType::kMetricUpdate);
  WireReader reader(frame.payload);
  const MetricUpdateMsg back = MetricUpdateMsg::decode(reader);
  EXPECT_EQ(back.seq, 41u);
  EXPECT_DOUBLE_EQ(back.t_agent_s, 12.75);
  ASSERT_EQ(back.delta.defs.size(), 3u);
  EXPECT_EQ(back.delta.defs[1].name, "a.gauge");
  EXPECT_EQ(back.delta.defs[2].kind, trace::MetricKind::kHistogram);
  ASSERT_EQ(back.delta.counters.size(), 1u);
  EXPECT_EQ(back.delta.counters[0].delta, 17u);
  ASSERT_EQ(back.delta.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(back.delta.gauges[0].value, -3.5);
  ASSERT_EQ(back.delta.hists.size(), 1u);
  EXPECT_EQ(back.delta.hists[0].count_delta, 3u);
  EXPECT_DOUBLE_EQ(back.delta.hists[0].max, 4.0);
  ASSERT_EQ(back.delta.hists[0].buckets.size(), 2u);
  EXPECT_EQ(back.delta.hists[0].buckets[0].first, 63u);
  EXPECT_EQ(back.delta.hists[0].buckets[1].second, 1u);
}

TEST(MetricsPlane, FlightRecordRoundTripsOnTheWire) {
  FlightRecordMsg msg;
  msg.reason = "n0: watchdog trip";
  msg.dump = "# fs2 flight recorder\n## alerts (1)\nflatline n0\n";
  const Frame frame = msg.encode();
  EXPECT_EQ(frame.type, MessageType::kFlightRecord);
  WireReader reader(frame.payload);
  const FlightRecordMsg back = FlightRecordMsg::decode(reader);
  EXPECT_EQ(back.reason, msg.reason);
  EXPECT_EQ(back.dump, msg.dump);
}

TEST(MetricsPlane, DeltaStreamFoldsBackToRegistryTotalsOverALongRun) {
  // A long run of small movements, collected every iteration, each delta
  // round-tripped through the wire and folded coordinator-side: the folded
  // series must equal the registry's final totals exactly.
  trace::Registry reg;
  trace::MetricDeltaTracker tracker(reg);
  MetricStore store;
  store.resize(1);
  std::uint32_t seq = 0;
  std::size_t defs_shipped = 0;

  trace::Counter& events = reg.counter("n.events");
  trace::Gauge& depth = reg.gauge("n.depth");
  trace::Histogram& lat = reg.histogram("n.latency_s");
  for (int i = 0; i < 200; ++i) {
    events.add(static_cast<std::uint64_t>(i % 7));
    depth.set(static_cast<double>(i));
    lat.record(1e-6 * static_cast<double>(1 + (i * 37) % 5000));
    if (i == 120) reg.counter("n.late_metric").add(9);  // def ships mid-stream

    trace::MetricDelta delta = tracker.collect();
    defs_shipped += delta.defs.size();
    if (delta.empty()) continue;
    MetricUpdateMsg msg;
    msg.seq = seq++;
    msg.t_agent_s = 0.1 * i;
    msg.delta = std::move(delta);
    const Frame frame = msg.encode();  // through the wire, like the real path
    WireReader reader(frame.payload);
    store.fold(0, MetricUpdateMsg::decode(reader), /*now_s=*/0.1 * i);
  }
  // An idle interval ships no defs, counter deltas, or histogram deltas —
  // only the (always re-shipped) gauge values.
  const trace::MetricDelta idle = tracker.collect();
  EXPECT_TRUE(idle.defs.empty());
  EXPECT_TRUE(idle.counters.empty());
  EXPECT_TRUE(idle.hists.empty());
  EXPECT_EQ(idle.gauges.size(), 1u);
  // Each metric's definition crossed the wire exactly once.
  EXPECT_EQ(defs_shipped, 4u);

  ASSERT_EQ(store.nodes().size(), 1u);
  const MetricStore::NodeSeries& series = store.nodes()[0];
  for (const trace::IndexedMetric& m : reg.indexed_snapshot()) {
    ASSERT_LT(m.id, series.defs.size());
    EXPECT_EQ(series.defs[m.id].name, m.name);
    switch (m.kind) {
      case trace::MetricKind::kCounter:
        EXPECT_EQ(series.counters[m.id], m.counter) << m.name;
        break;
      case trace::MetricKind::kGauge:
        EXPECT_DOUBLE_EQ(series.gauges[m.id], m.gauge) << m.name;
        break;
      case trace::MetricKind::kHistogram:
        expect_hist_equal(series.hists[m.id], m.hist);
        break;
    }
  }
  EXPECT_EQ(series.updates, 200u);
}

TEST(MetricsPlane, RollupSumsCountersAndMergesHistogramsAcrossNodes) {
  MetricStore store;
  store.resize(2);
  // Two nodes with the same metric NAMES but different local ids — the
  // rollup must key on names, not ids.
  for (std::size_t node = 0; node < 2; ++node) {
    trace::Registry reg;
    if (node == 1) reg.gauge("pad");  // shifts ids on node 1
    reg.counter("frames").add(10 * (node + 1));
    reg.gauge("phase").set(static_cast<double>(node));
    reg.histogram("drain_s").record(0.001 * (node + 1));
    trace::MetricDeltaTracker tracker(reg);
    MetricUpdateMsg msg;
    msg.delta = tracker.collect();
    store.fold(node, msg, /*now_s=*/1.0);
  }
  const MetricStore::Rollup rollup = store.rollup();
  auto frames = std::find_if(rollup.counters.begin(), rollup.counters.end(),
                             [](const auto& p) { return p.first == "frames"; });
  ASSERT_NE(frames, rollup.counters.end());
  EXPECT_EQ(frames->second, 30u);
  ASSERT_EQ(rollup.hists.size(), 1u);
  EXPECT_EQ(rollup.hists[0].name, "drain_s");
  EXPECT_EQ(rollup.hists[0].count, 2u);
  EXPECT_DOUBLE_EQ(rollup.hists[0].max, 0.002);
  // Gauges stay per-node; they never appear in a fleet rollup.
  for (const auto& [name, value] : rollup.counters) EXPECT_NE(name, "phase");
  EXPECT_DOUBLE_EQ(store.age_s(0, 3.5), 2.5);
  EXPECT_DOUBLE_EQ(store.age_s(7, 3.5), -1.0);
}

// ---- anomaly detector -------------------------------------------------------

TEST(AnomalyDetector, FlatlineIsEdgeTriggeredAndClearsOnResume) {
  AnomalyDetector::Options opt;
  opt.metrics_interval_s = 1.0;
  opt.flatline_intervals = 3.0;
  AnomalyDetector det(opt, 2);
  det.set_node_name(0, "n0");
  det.set_node_name(1, "n1");

  det.on_metric_update(0, 0.0);
  det.sweep(2.0);  // within 3 intervals — quiet
  EXPECT_TRUE(det.alerts().empty());
  det.sweep(4.0);  // n0 silent for 4 s; n1 never shipped — only n0 flagged
  ASSERT_EQ(det.alerts().size(), 1u);
  EXPECT_EQ(det.alerts()[0].kind, "flatline");
  EXPECT_EQ(det.alerts()[0].node, "n0");
  EXPECT_FALSE(det.node_healthy(0));
  EXPECT_FALSE(det.fleet_healthy());
  det.sweep(5.0);  // edge-triggered: no duplicate while still flat
  EXPECT_EQ(det.alerts().size(), 1u);

  det.on_metric_update(0, 6.0);  // resumed — healthy again, history kept
  EXPECT_TRUE(det.node_healthy(0));
  EXPECT_TRUE(det.fleet_healthy());
  det.sweep(10.5);  // a second excursion raises a second alert
  EXPECT_EQ(det.alerts().size(), 2u);
}

TEST(AnomalyDetector, DoneNodesAreExemptFromTheFlatlineSweep) {
  AnomalyDetector::Options opt;
  opt.metrics_interval_s = 1.0;
  AnomalyDetector det(opt, 1);
  det.set_node_name(0, "n0");
  det.on_metric_update(0, 0.0);
  det.on_node_done(0);  // verdict delivered — silence is expected now
  det.sweep(100.0);
  EXPECT_TRUE(det.alerts().empty());
  EXPECT_TRUE(det.node_healthy(0));
}

TEST(AnomalyDetector, DivergenceNeedsConsecutiveWindowsAndRecovers) {
  AnomalyDetector::Options opt;
  opt.divergence_band = 0.1;
  opt.divergence_windows = 4;
  AnomalyDetector det(opt, 1);
  det.set_node_name(0, "n0");

  for (int i = 0; i < 3; ++i) det.on_budget_report(0, 50.0, 100.0, i);
  det.on_budget_report(0, 99.0, 100.0, 3.0);  // back in band — streak resets
  for (int i = 0; i < 3; ++i) det.on_budget_report(0, 50.0, 100.0, 4.0 + i);
  EXPECT_TRUE(det.alerts().empty());
  det.on_budget_report(0, 50.0, 100.0, 7.0);  // 4th consecutive — alert
  ASSERT_EQ(det.alerts().size(), 1u);
  EXPECT_EQ(det.alerts()[0].kind, "divergence");
  EXPECT_FALSE(det.node_healthy(0));
  det.on_budget_report(0, 101.0, 100.0, 8.0);  // recovery is level-triggered
  EXPECT_TRUE(det.node_healthy(0));
  EXPECT_EQ(det.alerts().size(), 1u);
}

TEST(AnomalyDetector, StragglerAndNodeLostAlerts) {
  AnomalyDetector::Options opt;
  opt.sync_tolerance_s = 0.25;
  AnomalyDetector det(opt, 2);
  det.set_node_name(0, "n0");
  det.set_node_name(1, "n1");

  det.on_phase_spread("ramp", "n1", 0.1, 1.0);  // within tolerance
  EXPECT_TRUE(det.alerts().empty());
  det.on_phase_spread("hold", "n1", 0.6, 2.0);
  ASSERT_EQ(det.alerts().size(), 1u);
  EXPECT_EQ(det.alerts()[0].kind, "straggler");
  EXPECT_EQ(det.alerts()[0].node, "n1");

  det.on_node_lost(0, "read EOF", 3.0);
  det.on_node_lost(0, "again", 4.0);  // idempotent — one alert per loss
  ASSERT_EQ(det.alerts().size(), 2u);
  EXPECT_EQ(det.alerts()[1].kind, "node-lost");
  EXPECT_FALSE(det.node_healthy(0));
  EXPECT_FALSE(det.fleet_healthy());

  // take_new() is a watermark, not a drain of the history.
  EXPECT_EQ(det.take_new().size(), 2u);
  EXPECT_TRUE(det.take_new().empty());
  EXPECT_EQ(det.alerts().size(), 2u);
  det.on_phase_spread("cool", "n0", 0.9, 5.0);
  EXPECT_EQ(det.take_new().size(), 1u);
}

// ---- flight recorder --------------------------------------------------------

TEST(FlightRecorder, RingsAreBoundedAndDumpWritesTheFile) {
  trace::FlightRecorder& rec = trace::FlightRecorder::instance();
  rec.reset();
  for (int i = 0; i < 100; ++i)
    rec.note_alert("alert-" + std::to_string(i));
  rec.note_event("event-line");
  rec.note_metrics("metrics-line");

  const std::string text = rec.serialize();
  EXPECT_NE(text.find("# fs2 flight recorder"), std::string::npos);
  EXPECT_NE(text.find("## alerts (64)"), std::string::npos);
  // Oldest entries were evicted; the newest survive.
  EXPECT_EQ(text.find("alert-35\n"), std::string::npos);
  EXPECT_NE(text.find("alert-36"), std::string::npos);
  EXPECT_NE(text.find("alert-99"), std::string::npos);
  EXPECT_NE(text.find("event-line"), std::string::npos);
  EXPECT_NE(text.find("metrics-line"), std::string::npos);

  const std::string path = "fs2_test_flight_dump.txt";
  rec.configure(path);
  rec.dump("unit-test reason");
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("# reason: unit-test reason"), std::string::npos);
  EXPECT_NE(buffer.str().find("alert-99"), std::string::npos);
  rec.reset();
  std::remove(path.c_str());
}

// ---- exposition -------------------------------------------------------------

TEST(Exposition, SanitizesNamesAndRendersAllSections) {
  EXPECT_EQ(exposition_name("cluster.bus.drain_s"), "fs2_cluster_bus_drain_s");
  EXPECT_EQ(exposition_name("rx/frames-total"), "fs2_rx_frames_total");

  std::vector<trace::MetricSnapshot> local;
  local.push_back(trace::MetricSnapshot{"coordinator.http_requests", 3.0, true});
  trace::Histogram rx;
  rx.record(128.0);
  rx.record(1024.0);
  std::vector<trace::HistogramSnapshot> local_hists{rx.snapshot("rx.frame_bytes")};

  MetricStore store;
  store.resize(1);
  trace::Registry reg;
  reg.counter("agent.budget_exchanges").add(12);
  reg.gauge("agent.achieved_w").set(251.5);
  reg.histogram("agent.ctl_error_w").record(0.6);
  trace::MetricDeltaTracker tracker(reg);
  MetricUpdateMsg msg;
  msg.delta = tracker.collect();
  store.fold(0, msg, 1.0);

  std::vector<ExpositionNode> nodes(1);
  nodes[0].name = "n0-zen2";
  nodes[0].phases_begun = 2;
  nodes[0].phases_ended = 1;
  nodes[0].metrics_age_s = 0.4;

  const std::string out =
      render_metrics(local, local_hists, store, nodes, /*alert_count=*/2,
                     /*fleet_healthy=*/false);
  EXPECT_NE(out.find("# TYPE fs2_fleet_nodes gauge\nfs2_fleet_nodes 1\n"),
            std::string::npos);
  EXPECT_NE(out.find("fs2_fleet_healthy 0"), std::string::npos);
  EXPECT_NE(out.find("fs2_fleet_alerts_total 2"), std::string::npos);
  // Coordinator-local counter and histogram summary.
  EXPECT_NE(out.find("# TYPE fs2_coordinator_http_requests counter"),
            std::string::npos);
  EXPECT_NE(out.find("fs2_rx_frame_bytes{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(out.find("fs2_rx_frame_bytes_count 2"), std::string::npos);
  // Fleet rollups from the folded stream.
  EXPECT_NE(out.find("fs2_fleet_agent_budget_exchanges 12"), std::string::npos);
  EXPECT_NE(out.find("fs2_fleet_agent_ctl_error_w{quantile=\"0.99\"}"),
            std::string::npos);
  // Per-node gauges with {node=...} labels, both built-in and plane-shipped.
  EXPECT_NE(out.find("fs2_node_up{node=\"n0-zen2\"} 1"), std::string::npos);
  EXPECT_NE(out.find("fs2_node_phases_begun{node=\"n0-zen2\"} 2"),
            std::string::npos);
  EXPECT_NE(out.find("fs2_agent_achieved_w{node=\"n0-zen2\"} 251.5"),
            std::string::npos);
}

// ---- end-to-end -------------------------------------------------------------

/// One raw HTTP/1.1 request against the coordinator port. The framed
/// Connection class can't speak HTTP, so this goes straight to the socket —
/// exactly what curl or a Prometheus scraper would do.
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  // The listener fd outlives run() (the Coordinator object owns it), so a
  // probe that lands after the event loop exits connects but is never
  // accepted — timeouts turn that into an empty reply instead of a hang.
  timeval tv{};
  tv.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(Exposition, ServesMetricsAndHealthzOverHttpMidRun) {
  Coordinator::Options options;
  options.port = 0;
  options.loopback_only = true;
  options.nodes = 1;
  options.campaign_text = "phase name=p duration=6 profile=constant:50\n";
  options.phase_count = 1;
  // The epoch delay parks the fleet inside the event loop long enough for
  // the scrapes to land mid-run.
  options.start_delay_s = 1.5;
  options.metrics_interval_s = 0.25;
  Coordinator coordinator(options);
  const std::uint16_t port = coordinator.port();
  Coordinator::Result result;
  std::ostringstream out;
  std::thread run_thread([&] { result = coordinator.run(out); });

  firestarter::Config cfg;
  cfg.log_level = "error";
  const auto specs = firestarter::parse_loopback_specs("zen2@1500");
  std::unique_ptr<firestarter::SimFleet> fleet;
  std::thread fleet_thread([&] {
    fleet = std::make_unique<firestarter::SimFleet>(cfg, specs, port);
    fleet->run();
  });

  std::string metrics;
  std::string healthz;
  for (int attempt = 0; attempt < 300; ++attempt) {
    const std::string body = http_get(port, "/metrics");
    if (body.find("HTTP/1.1 200") != std::string::npos &&
        body.find("fs2_node_up{node=\"n0-zen2\"} 1") != std::string::npos) {
      metrics = body;
      healthz = http_get(port, "/healthz");
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  run_thread.join();
  fleet_thread.join();

  ASSERT_FALSE(metrics.empty()) << "no live /metrics scrape landed mid-run";
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(metrics.find("# TYPE fs2_fleet_nodes gauge"), std::string::npos);
  EXPECT_NE(metrics.find("fs2_fleet_healthy 1"), std::string::npos);
  // The in-process reactor records its poll-wait histogram into the global
  // registry, so quantile summaries are live on the scrape.
  EXPECT_NE(metrics.find("quantile=\"0.5\""), std::string::npos);
  EXPECT_NE(healthz.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(healthz.find("ok"), std::string::npos);
  ASSERT_TRUE(fleet != nullptr);
  EXPECT_TRUE(fleet->all_ok());
  EXPECT_TRUE(result.nodes_converged);
}

/// A protocol-correct agent that handshakes, begins phase 0, ships one
/// metric update, then goes silent (flat-line) and finally drops the
/// connection (node-lost). Drives the full anomaly path without any
/// dependence on timing inside a real workload.
class SilentAgent {
 public:
  explicit SilentAgent(std::uint16_t port)
      : conn_(Connection::connect("127.0.0.1:" + std::to_string(port),
                                  /*retry_for_s=*/5.0)) {
    HelloMsg hello;
    hello.node_name = "ghost";
    hello.sku = "test";
    conn_.send(hello.encode());
    bool have_campaign = false;
    bool have_epoch = false;
    while (!have_campaign || !have_epoch) {
      const auto frame = conn_.recv(/*timeout_s=*/10.0);
      if (!frame) throw Error("ghost: coordinator silent during handshake");
      WireReader reader(frame->payload);
      switch (frame->type) {
        case MessageType::kSyncProbe: {
          const SyncProbeMsg probe = SyncProbeMsg::decode(reader);
          SyncReplyMsg reply;
          reply.seq = probe.seq;
          reply.t_coord_s = probe.t_coord_s;
          reply.t_agent_s =
              std::chrono::duration<double>(
                  std::chrono::steady_clock::now().time_since_epoch())
                  .count();
          conn_.send(reply.encode());
          break;
        }
        case MessageType::kCampaign:
          campaign_ = CampaignMsg::decode(reader);
          have_campaign = true;
          break;
        case MessageType::kEpoch:
          (void)EpochMsg::decode(reader);
          have_epoch = true;
          break;
        default:
          throw Error(std::string("ghost: unexpected ") + to_string(frame->type) +
                      " in handshake");
      }
    }
  }

  void begin_phase_and_ship_one_update() {
    PhaseBracketMsg bracket;
    bracket.is_begin = 1;
    bracket.phase_index = 0;
    bracket.phase_name = "p";
    bracket.duration_s = 6.0;
    bracket.epoch_elapsed_s = 0.01;
    conn_.send(bracket.encode());

    trace::Registry reg;
    reg.counter("ghost.heartbeats").add(1);
    trace::MetricDeltaTracker tracker(reg);
    MetricUpdateMsg msg;
    msg.seq = 0;
    msg.t_agent_s = 0.02;
    msg.delta = tracker.collect();
    conn_.send(msg.encode());
  }

  void drop() { conn_.close(); }

  double metrics_interval_s() const { return campaign_.metrics_interval_s; }

 private:
  Connection conn_;
  CampaignMsg campaign_;
};

TEST(AnomalyDetector, SilentNodeRaisesFlatlineThenNodeLostEndToEnd) {
  trace::FlightRecorder::instance().reset();
  const std::string flight_path = "fs2_test_flight_e2e.txt";
  trace::FlightRecorder::instance().configure(flight_path);

  Coordinator::Options options;
  options.port = 0;
  options.loopback_only = true;
  options.nodes = 2;
  options.campaign_text = "phase name=p duration=6 profile=constant:50\n";
  options.phase_count = 1;
  options.start_delay_s = 1.0;
  options.metrics_interval_s = 0.25;  // flat-line limit = 0.75 s
  Coordinator coordinator(options);
  const std::uint16_t port = coordinator.port();
  const std::string endpoint = "127.0.0.1:" + std::to_string(port);
  Coordinator::Result result;
  std::ostringstream out;
  std::thread run_thread([&] { result = coordinator.run(out); });

  firestarter::Config cfg;
  cfg.log_level = "error";
  const auto specs = firestarter::parse_loopback_specs("zen2@1500");
  std::unique_ptr<firestarter::SimFleet> fleet;
  std::thread fleet_thread([&] {
    fleet = std::make_unique<firestarter::SimFleet>(cfg, specs, port);
    fleet->run();
  });

  std::atomic<bool> release{false};
  std::thread ghost_thread([&] {
    SilentAgent ghost(port);
    EXPECT_DOUBLE_EQ(ghost.metrics_interval_s(), 0.25);
    ghost.begin_phase_and_ship_one_update();
    // Stay connected but silent until the main thread has observed the
    // flat-line, then hang up to trigger the node-lost path.
    while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ghost.drop();
  });

  // Probe the status plane until the ghost's silence trips the detector.
  bool saw_unhealthy = false;
  bool saw_flatline_row = false;
  for (int attempt = 0; attempt < 500 && !saw_unhealthy; ++attempt) {
    try {
      Connection probe = Connection::connect(endpoint, /*retry_for_s=*/0.2);
      probe.send(StatusRequestMsg{}.encode());
      const auto frame = probe.recv(/*timeout_s=*/2.0);
      if (!frame || frame->type != MessageType::kStatusReply) break;
      WireReader reader(frame->payload);
      const StatusReplyMsg reply = StatusReplyMsg::decode(reader);
      if (reply.fleet_healthy == 0) {
        saw_unhealthy = true;
        for (const StatusAlertRec& alert : reply.alerts)
          if (alert.kind == "flatline" && alert.node == "ghost")
            saw_flatline_row = true;
      }
    } catch (const Error&) {
      break;  // run ended before we caught it — the assertions below will say
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(saw_unhealthy);
  EXPECT_TRUE(saw_flatline_row);

  // Satellite contract: `fs2 --status` exits nonzero against an unhealthy
  // fleet, and says so.
  if (saw_unhealthy) {
    firestarter::Config status_cfg;
    status_cfg.status_endpoint = endpoint;
    status_cfg.log_level = "error";
    std::ostringstream status_out;
    firestarter::Firestarter status_app(status_cfg, status_out);
    EXPECT_NE(status_app.run(), 0) << status_out.str();
    EXPECT_NE(status_out.str().find("UNHEALTHY"), std::string::npos)
        << status_out.str();
    EXPECT_NE(status_out.str().find("flatline"), std::string::npos)
        << status_out.str();
  }

  release.store(true);
  ghost_thread.join();
  run_thread.join();
  fleet_thread.join();

  // The run survived the loss: the healthy node converged, the ghost is
  // recorded as lost, and the alert log tells the whole story in order.
  EXPECT_FALSE(result.nodes_converged);
  bool flatline_alert = false;
  bool lost_alert = false;
  for (const Alert& alert : result.alerts) {
    if (alert.kind == "flatline" && alert.node == "ghost") flatline_alert = true;
    if (alert.kind == "node-lost" && alert.node == "ghost") lost_alert = true;
  }
  EXPECT_TRUE(flatline_alert);
  EXPECT_TRUE(lost_alert);
  ASSERT_TRUE(fleet != nullptr);
  EXPECT_TRUE(fleet->all_ok());

  // The flight recorder dumped to --flight-out (the node loss writes one,
  // and the end-of-run dump rewrites it with the full alert ring).
  std::ifstream in(flight_path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("# reason:"), std::string::npos) << buffer.str();
  EXPECT_NE(buffer.str().find("[node-lost] node=ghost"), std::string::npos)
      << buffer.str();
  EXPECT_NE(buffer.str().find("[flatline] node=ghost"), std::string::npos)
      << buffer.str();
  trace::FlightRecorder::instance().reset();
  std::remove(flight_path.c_str());
}

}  // namespace
