// Tests for the payload model: the Eq. 1 grammar, the even-distribution
// sequence builder (property-tested), the instruction-mix registry, and
// static payload analysis.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "payload/access.hpp"
#include "payload/compiler.hpp"
#include "payload/groups.hpp"
#include "payload/mix.hpp"
#include "payload/sequence.hpp"
#include "util/error.hpp"

namespace fs2::payload {
namespace {

// ---- access kinds -----------------------------------------------------------

TEST(Access, ParseCanonicalForms) {
  auto reg = parse_access_kind("REG");
  ASSERT_TRUE(reg.has_value());
  EXPECT_EQ(reg->level, MemoryLevel::kReg);

  auto l1 = parse_access_kind("L1_LS");
  ASSERT_TRUE(l1.has_value());
  EXPECT_EQ(l1->level, MemoryLevel::kL1);
  EXPECT_EQ(l1->pattern, AccessPattern::kLoadStore);

  auto ram = parse_access_kind("RAM_P");
  ASSERT_TRUE(ram.has_value());
  EXPECT_EQ(ram->pattern, AccessPattern::kPrefetch);
}

TEST(Access, ParseIsCaseInsensitive) {
  EXPECT_TRUE(parse_access_kind("l1_l").has_value());
  EXPECT_TRUE(parse_access_kind("ram_ls").has_value());
  EXPECT_TRUE(parse_access_kind(" reg ").has_value());
}

TEST(Access, RejectsUndefinedPatterns) {
  EXPECT_FALSE(parse_access_kind("L1_P").has_value());   // prefetch to L1 undefined
  EXPECT_FALSE(parse_access_kind("L2_2LS").has_value()); // 2LS only at L1
  EXPECT_FALSE(parse_access_kind("RAM_2LS").has_value());
  EXPECT_FALSE(parse_access_kind("L4_L").has_value());
  EXPECT_FALSE(parse_access_kind("bogus").has_value());
  EXPECT_FALSE(parse_access_kind("").has_value());
}

TEST(Access, RoundTripsThroughToString) {
  for (const AccessKind& kind : all_access_kinds()) {
    const auto parsed = parse_access_kind(kind.to_string());
    ASSERT_TRUE(parsed.has_value()) << kind.to_string();
    EXPECT_TRUE(*parsed == kind) << kind.to_string();
  }
}

TEST(Access, MemoryOpCounts) {
  EXPECT_EQ(parse_access_kind("L1_2LS")->memory_ops(), 3);
  EXPECT_EQ(parse_access_kind("L1_2LS")->loads(), 2);
  EXPECT_EQ(parse_access_kind("L1_2LS")->stores(), 1);
  EXPECT_EQ(parse_access_kind("RAM_P")->prefetches(), 1);
  EXPECT_EQ(parse_access_kind("REG")->memory_ops(), 0);
}

TEST(Access, AllKindsAreValidAndUnique) {
  const auto& kinds = all_access_kinds();
  EXPECT_GT(kinds.size(), 10u);
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    EXPECT_TRUE(is_valid(kinds[i].level, kinds[i].pattern));
    for (std::size_t j = i + 1; j < kinds.size(); ++j)
      EXPECT_FALSE(kinds[i] == kinds[j]) << i << "," << j;
  }
}

// ---- groups grammar --------------------------------------------------------------

TEST(Groups, ParsesPaperExample) {
  // The worked example from Sec. III: REG:4,L1_L:2,L2_L:1.
  const auto groups = InstructionGroups::parse("REG:4,L1_L:2,L2_L:1");
  EXPECT_EQ(groups.total(), 7u);
  EXPECT_EQ(groups.count_of(*parse_access_kind("REG")), 4u);
  EXPECT_EQ(groups.count_of(*parse_access_kind("L1_L")), 2u);
  EXPECT_EQ(groups.count_of(*parse_access_kind("L2_L")), 1u);
  EXPECT_EQ(groups.count_of(*parse_access_kind("RAM_L")), 0u);
}

TEST(Groups, RoundTrip) {
  const std::string text = "RAM_L:3,L3_LS:3,L2_LS:10,L1_LS:77,REG:37";
  EXPECT_EQ(InstructionGroups::parse(text).to_string(), text);
}

TEST(Groups, RejectsMalformedInput) {
  EXPECT_THROW(InstructionGroups::parse(""), ConfigError);
  EXPECT_THROW(InstructionGroups::parse("REG"), ConfigError);          // missing count
  EXPECT_THROW(InstructionGroups::parse("REG:0"), ConfigError);        // zero count
  EXPECT_THROW(InstructionGroups::parse("REG:4,REG:2"), ConfigError);  // duplicate
  EXPECT_THROW(InstructionGroups::parse("L9_L:1"), ConfigError);       // unknown level
  EXPECT_THROW(InstructionGroups::parse("L1_P:1"), ConfigError);       // invalid pattern
  EXPECT_THROW(InstructionGroups::parse("REG:abc"), ConfigError);
  EXPECT_THROW(InstructionGroups::parse(",REG:1"), ConfigError);
}

TEST(Groups, TouchesLevels) {
  const auto groups = InstructionGroups::parse("REG:4,L2_L:1");
  EXPECT_TRUE(groups.touches(MemoryLevel::kReg));
  EXPECT_TRUE(groups.touches(MemoryLevel::kL2));
  EXPECT_FALSE(groups.touches(MemoryLevel::kRam));
}

// ---- sequence distribution (property tests) ------------------------------------------

using SeqCase = const char*;
class SequenceProperties : public testing::TestWithParam<SeqCase> {};

TEST_P(SequenceProperties, ExactCountsAndBoundedGaps) {
  const auto groups = InstructionGroups::parse(GetParam());
  const auto seq = base_sequence(groups);
  ASSERT_EQ(seq.size(), groups.total());

  // Property 1: every kind appears exactly a_i times.
  for (const Group& g : groups.groups()) {
    const auto count = std::count_if(seq.begin(), seq.end(),
                                     [&](const AccessKind& k) { return k == g.kind; });
    EXPECT_EQ(count, static_cast<long>(g.count)) << g.kind.to_string();
  }

  // Property 2: occurrences of each kind are spread out — the gap between
  // consecutive occurrences never exceeds the ideal gap ceil(total/a_i)
  // plus one slot of slip per other group (the provable bound of the
  // ideal-position scheduler).
  const double total = groups.total();
  for (const Group& g : groups.groups()) {
    const long bound = static_cast<long>(std::ceil(total / g.count)) +
                       static_cast<long>(groups.groups().size());
    long last = -1;
    for (std::size_t i = 0; i < seq.size(); ++i) {
      if (!(seq[i] == g.kind)) continue;
      if (last >= 0) {
        EXPECT_LE(static_cast<long>(i) - last, bound)
            << g.kind.to_string() << " gap at " << i << " for " << GetParam();
      }
      last = static_cast<long>(i);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grammar, SequenceProperties,
    testing::Values("REG:4,L1_L:2,L2_L:1", "REG:1", "L1_LS:7",
                    "RAM_L:3,L3_LS:3,L2_LS:10,L1_LS:77,REG:37",
                    "REG:100,RAM_P:1", "REG:2,L1_L:2,L2_S:2,L3_P:2,RAM_LS:2",
                    "L1_2LS:5,REG:3", "REG:40,L1_LS:90,L2_LS:9,L3_LS:3,RAM_L:2"));

TEST(Sequence, PaperExampleSpacing) {
  // Sec. III: with REG:4,L1_L:2,L2_L:1 the two L1 accesses must be at least
  // three instruction sets apart.
  const auto seq = base_sequence(InstructionGroups::parse("REG:4,L1_L:2,L2_L:1"));
  std::vector<long> l1_positions;
  for (std::size_t i = 0; i < seq.size(); ++i)
    if (seq[i].level == MemoryLevel::kL1) l1_positions.push_back(static_cast<long>(i));
  ASSERT_EQ(l1_positions.size(), 2u);
  EXPECT_GE(l1_positions[1] - l1_positions[0], 3);
}

TEST(Sequence, UnrollRepeatsCyclically) {
  const auto base = base_sequence(InstructionGroups::parse("REG:2,L1_L:1"));
  const auto unrolled = unroll_sequence(base, 10);
  ASSERT_EQ(unrolled.size(), 10u);
  for (std::size_t i = 0; i < unrolled.size(); ++i)
    EXPECT_TRUE(unrolled[i] == base[i % base.size()]);
}

TEST(Sequence, UnrollValidation) {
  const auto base = base_sequence(InstructionGroups::parse("REG:1"));
  EXPECT_THROW(unroll_sequence(base, 0), ConfigError);
  EXPECT_THROW(unroll_sequence({}, 5), ConfigError);
}

TEST(Sequence, AnalyzeCountsPerLevel) {
  const auto seq = build_sequence(InstructionGroups::parse("REG:1,L1_2LS:1,RAM_P:1"), 6);
  const SequenceStats stats = analyze_sequence(seq);
  EXPECT_EQ(stats.sets, 6u);
  // 6 sets = 2 full passes over the 3-entry base sequence.
  EXPECT_EQ(stats.loads[static_cast<int>(MemoryLevel::kL1)], 4u);   // 2 per 2LS x 2
  EXPECT_EQ(stats.stores[static_cast<int>(MemoryLevel::kL1)], 2u);
  EXPECT_EQ(stats.prefetches[static_cast<int>(MemoryLevel::kRam)], 2u);
  EXPECT_EQ(stats.total_memory_ops(), 8u);
  EXPECT_EQ(stats.lines(MemoryLevel::kL1), 6u);
}

// ---- mix registry --------------------------------------------------------------------

TEST(Mix, RegistryHasUniqueIdsAndNames) {
  const auto& fns = available_functions();
  ASSERT_GE(fns.size(), 5u);
  for (std::size_t i = 0; i < fns.size(); ++i) {
    EXPECT_EQ(fns[i].id, static_cast<int>(i) + 1);  // ids are 1-based and dense
    for (std::size_t j = i + 1; j < fns.size(); ++j) EXPECT_NE(fns[i].name, fns[j].name);
    // Every default group string must parse.
    EXPECT_NO_THROW(InstructionGroups::parse(fns[i].default_groups)) << fns[i].name;
  }
}

TEST(Mix, FindByIdAndName) {
  EXPECT_EQ(find_function(1).id, 1);
  EXPECT_EQ(find_function("FUNC_FMA_256_ZEN2").name, "FUNC_FMA_256_ZEN2");
  EXPECT_EQ(find_function("func_fma_256_zen2").name, "FUNC_FMA_256_ZEN2");  // case-insensitive
  EXPECT_THROW(find_function(999), ConfigError);
  EXPECT_THROW(find_function("NOPE"), ConfigError);
}

TEST(Mix, SelectsTunedFunctionForPaperTestbeds) {
  EXPECT_EQ(select_function(arch::epyc_7502_model()).name, "FUNC_FMA_256_ZEN2");
  EXPECT_EQ(select_function(arch::xeon_e5_2680v3_model()).name, "FUNC_FMA_256_HASWELL");
}

TEST(Mix, FallsBackByFeatureSet) {
  arch::ProcessorModel cpu;
  cpu.microarch = arch::Microarch::kGeneric;
  cpu.features = arch::FeatureSet{.sse2 = true};
  EXPECT_EQ(select_function(cpu).mix.isa, IsaClass::kSse2);

  cpu.features.avx = true;
  EXPECT_EQ(select_function(cpu).mix.isa, IsaClass::kAvx);

  cpu.features.fma = true;
  EXPECT_EQ(select_function(cpu).mix.isa, IsaClass::kFma);
}

TEST(Mix, NoSse2Throws) {
  arch::ProcessorModel cpu;  // all features false
  EXPECT_THROW(select_function(cpu), UnsupportedError);
}

TEST(Mix, FlopsPerSet) {
  const InstructionMix& fma = find_function("FUNC_FMA_256_ZEN2").mix;
  EXPECT_EQ(fma.flops_per_set(), 2 * 2 * 4);  // 2 FMA x 2 flops x 4 doubles
  const InstructionMix& sse = find_function("FUNC_SSE2_128").mix;
  EXPECT_EQ(sse.flops_per_set(), 2 * 2);  // mul+add x 2 doubles
}

// ---- static payload analysis ------------------------------------------------------------

TEST(Analyze, DefaultUnrollTargetsL1I) {
  const auto& fn = find_function("FUNC_FMA_256_ZEN2");
  const auto caches = arch::CacheHierarchy::zen2();
  const PayloadStats stats =
      analyze_payload(fn.mix, InstructionGroups::parse(fn.default_groups), caches);
  // The loop must overflow typical micro-op caches (>4 KiB of code) but fit
  // within the 32 KiB L1-I (paper Sec. III-B / IV-C).
  EXPECT_GT(stats.loop_bytes, 4u * 1024);
  EXPECT_LE(stats.loop_bytes, 32u * 1024);
  EXPECT_EQ(stats.sequence.sets, stats.unroll);
  EXPECT_GT(stats.instructions_per_iteration, 0u);
  EXPECT_EQ(stats.instructions_per_iteration,
            stats.simd_per_iteration + stats.alu_per_iteration + stats.overhead_per_iteration);
}

TEST(Analyze, ExplicitUnrollHonored) {
  const auto& fn = find_function("FUNC_FMA_256_ZEN2");
  const auto caches = arch::CacheHierarchy::zen2();
  CompileOptions options;
  options.unroll = 200;
  const PayloadStats stats =
      analyze_payload(fn.mix, InstructionGroups::parse("REG:1,L1_L:1"), caches, options);
  EXPECT_EQ(stats.unroll, 200u);
  EXPECT_EQ(stats.sequence.sets, 200u);
  // 100 of the 200 sets carry an L1 load.
  EXPECT_EQ(stats.sequence.loads[static_cast<int>(MemoryLevel::kL1)], 100u);
}

TEST(Analyze, AluAndFmaCountsMatchMix) {
  const auto& fn = find_function("FUNC_FMA_256_ZEN2");
  const auto caches = arch::CacheHierarchy::zen2();
  CompileOptions options;
  options.unroll = 100;
  const PayloadStats stats =
      analyze_payload(fn.mix, InstructionGroups::parse("REG:1"), caches, options);
  // REG set: 2 FMA + 2 ALU per set.
  EXPECT_EQ(stats.fma_per_iteration, 200u);
  EXPECT_EQ(stats.alu_per_iteration, 200u);
  EXPECT_EQ(stats.flops_per_iteration, 200u * 8);
}

TEST(Analyze, RegionsFollowHierarchy) {
  const auto& fn = find_function("FUNC_FMA_256_ZEN2");
  const auto caches = arch::CacheHierarchy::zen2();
  const PayloadStats stats = analyze_payload(
      fn.mix, InstructionGroups::parse("REG:4,L1_LS:4,L2_LS:2,L3_LS:1,RAM_L:1"), caches);
  const auto level = [](MemoryLevel l) { return static_cast<int>(l); };
  // L1 region fits in L1-D; L2 region exceeds L1 but fits in L2; L3 region
  // exceeds L2; RAM region exceeds the per-thread L3 share.
  EXPECT_LE(stats.regions.bytes[level(MemoryLevel::kL1)], 32u * 1024);
  EXPECT_GT(stats.regions.bytes[level(MemoryLevel::kL2)], 32u * 1024);
  EXPECT_LE(stats.regions.bytes[level(MemoryLevel::kL2)], 512u * 1024);
  EXPECT_GT(stats.regions.bytes[level(MemoryLevel::kL3)], 512u * 1024);
  EXPECT_GT(stats.regions.bytes[level(MemoryLevel::kRam)],
            stats.regions.bytes[level(MemoryLevel::kL3)]);
}

TEST(Analyze, BytesPerIterationMatchLines) {
  const auto& fn = find_function("FUNC_FMA_256_ZEN2");
  const auto caches = arch::CacheHierarchy::zen2();
  CompileOptions options;
  options.unroll = 12;
  const PayloadStats stats =
      analyze_payload(fn.mix, InstructionGroups::parse("L1_2LS:1,L2_L:1"), caches, options);
  // 6 sets of each kind: L1 2LS = 3 lines/set, L2 L = 1 line/set.
  EXPECT_EQ(stats.bytes_per_iteration[static_cast<int>(MemoryLevel::kL1)], 6u * 3 * 64);
  EXPECT_EQ(stats.bytes_per_iteration[static_cast<int>(MemoryLevel::kL2)], 6u * 64);
}

}  // namespace
}  // namespace fs2::payload
