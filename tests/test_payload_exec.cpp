// Execution tests for compiled payloads: the JIT-generated stress kernels
// actually run on the host CPU. Verifies the kernel ABI, loop accounting,
// operand-safety invariants after millions of iterations (Sec. III-D), the
// v1.7.4 infinity-bug reproduction, and the register-dump feature.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "arch/cpuid.hpp"
#include "payload/compiler.hpp"
#include "payload/data.hpp"
#include "payload/mix.hpp"

namespace fs2::payload {
namespace {

const arch::CacheHierarchy& test_caches() {
  static const arch::CacheHierarchy caches = arch::CacheHierarchy::zen2();
  return caches;
}

bool host_supports(const InstructionMix& mix) {
  return arch::host_identity().features.covers(mix.required);
}

CompileOptions small_options(std::uint32_t unroll = 64) {
  CompileOptions options;
  options.unroll = unroll;
  options.ram_region_bytes = 1 << 20;  // keep test allocations small
  return options;
}

struct ExecCase {
  const char* mix_name;
  const char* groups;
};

class PayloadExecution : public testing::TestWithParam<ExecCase> {};

TEST_P(PayloadExecution, RunsAndReturnsIterationCount) {
  const auto& fn = find_function(GetParam().mix_name);
  if (!host_supports(fn.mix)) GTEST_SKIP() << "host lacks " << fn.mix.name;
  auto payload = compile_payload(fn.mix, InstructionGroups::parse(GetParam().groups),
                                 test_caches(), small_options());
  auto buffer = payload.make_buffer();
  buffer->init(DataInitPolicy::kSafe, 42);
  EXPECT_EQ(payload.fn()(&buffer->args(), 1000), 1000u);
  EXPECT_EQ(payload.fn()(&buffer->args(), 1), 1u);
  EXPECT_EQ(payload.fn()(&buffer->args(), 0), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    MixAndGroups, PayloadExecution,
    testing::Values(ExecCase{"FUNC_FMA_256_ZEN2", "REG:1"},
                    ExecCase{"FUNC_FMA_256_ZEN2", "REG:4,L1_L:2,L2_L:1"},
                    ExecCase{"FUNC_FMA_256_ZEN2", "L1_LS:1"},
                    ExecCase{"FUNC_FMA_256_ZEN2", "L1_2LS:2,REG:1"},
                    ExecCase{"FUNC_FMA_256_ZEN2", "RAM_L:1,L3_LS:1,L2_LS:2,L1_LS:8,REG:4"},
                    ExecCase{"FUNC_FMA_256_ZEN2", "L3_P:1,RAM_P:1,REG:2"},
                    ExecCase{"FUNC_FMA_256_ZEN2", "L2_S:1,L3_S:1,RAM_S:1,REG:3"},
                    ExecCase{"FUNC_AVX_256", "REG:2,L1_LS:2,L2_L:1"},
                    ExecCase{"FUNC_AVX_256", "RAM_LS:1,L3_L:1,REG:4"},
                    ExecCase{"FUNC_AVX512_512_GENERIC", "REG:1"},
                    ExecCase{"FUNC_AVX512_512_GENERIC", "REG:4,L1_L:2,L2_L:1"},
                    ExecCase{"FUNC_AVX512_512_GENERIC", "RAM_LS:1,L3_P:1,L2_S:2,L1_2LS:4,REG:4"},
                    ExecCase{"FUNC_SSE2_128", "REG:2,L1_LS:2,L2_L:1"},
                    ExecCase{"FUNC_SSE2_128", "RAM_L:1,L3_LS:1,L2_S:1,L1_2LS:2,REG:4"}),
    [](const testing::TestParamInfo<ExecCase>& info) {
      std::string name = std::string(info.param.mix_name) + "_" + info.param.groups;
      for (char& c : name)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

TEST(PayloadSafety, AccumulatorsStayFiniteAfterMillionsOfSets) {
  const auto& fn = find_function("FUNC_FMA_256_ZEN2");
  if (!host_supports(fn.mix)) GTEST_SKIP() << "host lacks FMA";
  CompileOptions options = small_options(128);
  options.dump_registers = true;
  auto payload = compile_payload(fn.mix, InstructionGroups::parse("REG:4,L1_LS:2,L2_L:1"),
                                 test_caches(), options);
  auto buffer = payload.make_buffer();
  buffer->init(DataInitPolicy::kSafe, 7);

  // 100k iterations x 128 sets x 2 FMA = ~25.6M FMA operations.
  EXPECT_EQ(payload.fn()(&buffer->args(), 100000), 100000u);

  const double* dump = buffer->dump();
  int checked = 0;
  for (int reg = 0; reg < 11; ++reg) {
    for (int lane = 0; lane < 4; ++lane) {
      const double v = dump[reg * 8 + lane];  // 64 B dump slots
      EXPECT_TRUE(std::isfinite(v)) << "reg " << reg << " lane " << lane << " = " << v;
      EXPECT_NE(v, 0.0) << "trivial operand in reg " << reg;
      // No denormals: magnitude stays in a sane band around the seeds.
      EXPECT_GT(std::abs(v), 1e-300);
      EXPECT_LT(std::abs(v), 1e10);
      ++checked;
    }
  }
  EXPECT_EQ(checked, 44);
}

TEST(PayloadSafety, V174BugDrivesRegistersToInfinity) {
  const auto& fn = find_function("FUNC_FMA_256_ZEN2");
  if (!host_supports(fn.mix)) GTEST_SKIP() << "host lacks FMA";
  CompileOptions options = small_options(64);
  options.dump_registers = true;
  auto payload =
      compile_payload(fn.mix, InstructionGroups::parse("REG:1"), test_caches(), options);
  auto buffer = payload.make_buffer();
  buffer->init(DataInitPolicy::kV174InfinityBug, 7);

  EXPECT_EQ(payload.fn()(&buffer->args(), 50000), 50000u);

  // With the buggy constants both FMA multipliers are +2^200, so every
  // accumulator races to +inf — exactly the behaviour Sec. III-D describes.
  const double* dump = buffer->dump();
  int infinities = 0;
  for (int reg = 0; reg < 11; ++reg)
    for (int lane = 0; lane < 4; ++lane)
      if (std::isinf(dump[reg * 8 + lane])) ++infinities;
  EXPECT_EQ(infinities, 11 * 4);
}

TEST(PayloadDump, DumpIsDeterministicAcrossRuns) {
  const auto& fn = find_function("FUNC_FMA_256_ZEN2");
  if (!host_supports(fn.mix)) GTEST_SKIP() << "host lacks FMA";
  CompileOptions options = small_options(32);
  options.dump_registers = true;
  auto payload = compile_payload(fn.mix, InstructionGroups::parse("REG:2,L1_L:1"),
                                 test_caches(), options);

  auto run = [&](std::uint64_t seed) {
    auto buffer = payload.make_buffer();
    buffer->init(DataInitPolicy::kSafe, seed);
    payload.fn()(&buffer->args(), 5000);
    return std::vector<double>(buffer->dump(), buffer->dump() + 11 * 8);
  };

  // Same seed -> bit-identical SIMD results (the check the paper's register
  // flushing enables for overclocked systems); different seed -> different.
  EXPECT_EQ(run(123), run(123));
  EXPECT_NE(run(123), run(124));
}

TEST(PayloadDump, WithoutDumpFlagDumpAreaUntouched) {
  const auto& fn = find_function("FUNC_FMA_256_ZEN2");
  if (!host_supports(fn.mix)) GTEST_SKIP() << "host lacks FMA";
  auto payload = compile_payload(fn.mix, InstructionGroups::parse("REG:1"), test_caches(),
                                 small_options(16));
  auto buffer = payload.make_buffer();
  buffer->init(DataInitPolicy::kSafe, 1);
  payload.fn()(&buffer->args(), 100);
  for (int i = 0; i < 16 * 8; ++i) EXPECT_EQ(buffer->dump()[i], 0.0);
}

TEST(PayloadMemory, StoresActuallyWriteTheRegion) {
  const auto& fn = find_function("FUNC_FMA_256_ZEN2");
  if (!host_supports(fn.mix)) GTEST_SKIP() << "host lacks FMA";
  auto payload = compile_payload(fn.mix, InstructionGroups::parse("L1_S:1"), test_caches(),
                                 small_options(16));
  auto buffer = payload.make_buffer();
  buffer->init(DataInitPolicy::kSafe, 3);
  // Snapshot the first lines of the L1 region, run, and expect changes.
  std::vector<double> before(buffer->args().l1, buffer->args().l1 + 64);
  payload.fn()(&buffer->args(), 10);
  std::vector<double> after(buffer->args().l1, buffer->args().l1 + 64);
  EXPECT_NE(before, after);
}

TEST(PayloadMemory, RegOnlyWorkloadLeavesRegionsUntouched) {
  const auto& fn = find_function("FUNC_FMA_256_ZEN2");
  if (!host_supports(fn.mix)) GTEST_SKIP() << "host lacks FMA";
  auto payload = compile_payload(fn.mix, InstructionGroups::parse("REG:1"), test_caches(),
                                 small_options(16));
  auto buffer = payload.make_buffer();
  buffer->init(DataInitPolicy::kSafe, 3);
  std::vector<double> before(buffer->args().ram, buffer->args().ram + 512);
  payload.fn()(&buffer->args(), 1000);
  std::vector<double> after(buffer->args().ram, buffer->args().ram + 512);
  EXPECT_EQ(before, after);
}

TEST(PayloadMemory, StreamingCursorCoversWholeRegionWithoutFaulting) {
  const auto& fn = find_function("FUNC_FMA_256_ZEN2");
  if (!host_supports(fn.mix)) GTEST_SKIP() << "host lacks FMA";
  // Small RAM region so 10k iterations wrap the cursor many times; any
  // out-of-bounds address arithmetic would fault or corrupt the heap.
  CompileOptions options = small_options(32);
  options.ram_region_bytes = 64 * 1024;
  auto payload = compile_payload(fn.mix, InstructionGroups::parse("RAM_LS:1,REG:1"),
                                 test_caches(), options);
  auto buffer = payload.make_buffer();
  buffer->init(DataInitPolicy::kSafe, 11);
  EXPECT_EQ(payload.fn()(&buffer->args(), 10000), 10000u);
}

TEST(PayloadBuffer, AllocationsAlignedToTwiceRegionSize) {
  const auto& fn = find_function("FUNC_FMA_256_ZEN2");
  auto stats = analyze_payload(fn.mix, InstructionGroups::parse("L1_L:1,L2_L:1"), test_caches(),
                               small_options(16));
  WorkBuffer buffer(stats.regions, stats.sequence);
  const auto l1_size = stats.regions.bytes[static_cast<int>(MemoryLevel::kL1)];
  const auto l2_size = stats.regions.bytes[static_cast<int>(MemoryLevel::kL2)];
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buffer.args().l1) % (2 * l1_size), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buffer.args().l2) % (2 * l2_size), 0u);
}

TEST(PayloadBuffer, InitIsDeterministic) {
  const auto& fn = find_function("FUNC_FMA_256_ZEN2");
  auto stats = analyze_payload(fn.mix, InstructionGroups::parse("L1_L:1"), test_caches(),
                               small_options(16));
  WorkBuffer a(stats.regions, stats.sequence);
  WorkBuffer b(stats.regions, stats.sequence);
  a.init(DataInitPolicy::kSafe, 5);
  b.init(DataInitPolicy::kSafe, 5);
  const auto n = stats.regions.bytes[static_cast<int>(MemoryLevel::kL1)] / sizeof(double);
  for (std::size_t i = 0; i < n; i += 97) EXPECT_EQ(a.args().l1[i], b.args().l1[i]);
}

TEST(PayloadBuffer, SafeInitHasNoTrivialOperands) {
  const auto& fn = find_function("FUNC_FMA_256_ZEN2");
  auto stats = analyze_payload(fn.mix, InstructionGroups::parse("L1_L:1"), test_caches(),
                               small_options(16));
  WorkBuffer buffer(stats.regions, stats.sequence);
  buffer.init(DataInitPolicy::kSafe, 5);
  const double* consts = buffer.args().consts;
  for (std::size_t i = 0; i < ConstLayout::kDoubles; ++i) {
    EXPECT_TRUE(std::isfinite(consts[i]));
  }
  // The multiplier toggles are non-zero and of opposite sign.
  EXPECT_GT(consts[ConstLayout::kMultPos], 0.0);
  EXPECT_LT(consts[ConstLayout::kMultNeg], 0.0);
  EXPECT_DOUBLE_EQ(consts[ConstLayout::kMultPos], -consts[ConstLayout::kMultNeg]);
  // m and 1/m are non-trivial (not exactly 1.0).
  EXPECT_NE(consts[ConstLayout::kMulUp], 1.0);
  EXPECT_NE(consts[ConstLayout::kMulDown], 1.0);
}

}  // namespace
}  // namespace fs2::payload
