// Tests for the load-profile scheduler subsystem: profile load(t) shapes,
// the spec parser, the shared phase clock that keeps workers' duty cycles in
// lockstep, campaign file parsing, and the ThreadManager integration.

#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "arch/cpuid.hpp"
#include "kernel/thread_manager.hpp"
#include "payload/mix.hpp"
#include "sched/campaign.hpp"
#include "sched/load_profile.hpp"
#include "sched/phase_clock.hpp"
#include "util/error.hpp"

namespace fs2::sched {
namespace {

namespace fs = std::filesystem;

// ---- constant ---------------------------------------------------------------

TEST(ConstantProfile, FixedLevelEverywhere) {
  const ConstantProfile half(0.5);
  EXPECT_DOUBLE_EQ(half.load_at(0.0), 0.5);
  EXPECT_DOUBLE_EQ(half.load_at(123.456), 0.5);
  EXPECT_TRUE(half.constant());
  EXPECT_STREQ(half.kind(), "constant");
}

TEST(ConstantProfile, ClampsToUnitRange) {
  EXPECT_DOUBLE_EQ(ConstantProfile(1.5).load_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(ConstantProfile(-0.5).load_at(0.0), 0.0);
}

// ---- square -----------------------------------------------------------------

TEST(SquareProfile, HighThenLowWithinEachPeriod) {
  const SquareProfile wave(0.1, 0.9, /*period=*/2.0, /*duty=*/0.5);
  EXPECT_DOUBLE_EQ(wave.load_at(0.0), 0.9);   // first half: high
  EXPECT_DOUBLE_EQ(wave.load_at(0.99), 0.9);
  EXPECT_DOUBLE_EQ(wave.load_at(1.0), 0.1);   // second half: low
  EXPECT_DOUBLE_EQ(wave.load_at(1.99), 0.1);
  EXPECT_DOUBLE_EQ(wave.load_at(2.0), 0.9);   // periodic
  EXPECT_DOUBLE_EQ(wave.load_at(42.5), 0.9);  // 42.5 mod 2 = 0.5: high half
  EXPECT_DOUBLE_EQ(wave.load_at(43.5), 0.1);  // 43.5 mod 2 = 1.5: low half
}

TEST(SquareProfile, DutyControlsHighFraction) {
  const SquareProfile wave(0.0, 1.0, 10.0, /*duty=*/0.2);
  EXPECT_DOUBLE_EQ(wave.load_at(1.9), 1.0);
  EXPECT_DOUBLE_EQ(wave.load_at(2.1), 0.0);
  EXPECT_DOUBLE_EQ(wave.load_at(9.9), 0.0);
}

TEST(SquareProfile, ValidatesParameters) {
  EXPECT_THROW(SquareProfile(0.0, 1.0, 0.0), ConfigError);
  EXPECT_THROW(SquareProfile(0.0, 1.0, 1.0, 0.0), ConfigError);
  EXPECT_THROW(SquareProfile(0.0, 1.0, 1.0, 1.0), ConfigError);
}

// ---- sine -------------------------------------------------------------------

TEST(SineProfile, StartsLowPeaksAtHalfPeriod) {
  const SineProfile sweep(0.1, 0.9, 4.0);
  EXPECT_NEAR(sweep.load_at(0.0), 0.1, 1e-12);
  EXPECT_NEAR(sweep.load_at(1.0), 0.5, 1e-12);  // quarter period: midpoint
  EXPECT_NEAR(sweep.load_at(2.0), 0.9, 1e-12);  // half period: peak
  EXPECT_NEAR(sweep.load_at(3.0), 0.5, 1e-12);
  EXPECT_NEAR(sweep.load_at(4.0), 0.1, 1e-12);  // full period: back to low
}

TEST(SineProfile, StaysWithinBand) {
  const SineProfile sweep(0.2, 0.8, 1.0);
  for (double t = 0.0; t < 3.0; t += 0.01) {
    EXPECT_GE(sweep.load_at(t), 0.2 - 1e-12);
    EXPECT_LE(sweep.load_at(t), 0.8 + 1e-12);
  }
}

TEST(SineProfile, NormalizesSwappedBounds) {
  const SineProfile sweep(0.9, 0.1, 2.0);
  EXPECT_NEAR(sweep.load_at(0.0), 0.1, 1e-12);
  EXPECT_NEAR(sweep.load_at(1.0), 0.9, 1e-12);
}

TEST(SineProfile, ValidatesPeriod) {
  EXPECT_THROW(SineProfile(0.0, 1.0, 0.0), ConfigError);
  EXPECT_THROW(SineProfile(0.0, 1.0, -2.0), ConfigError);
}

// ---- ramp -------------------------------------------------------------------

TEST(RampProfile, LinearThenHold) {
  const RampProfile ramp(0.2, 0.8, 10.0);
  EXPECT_DOUBLE_EQ(ramp.load_at(0.0), 0.2);
  EXPECT_DOUBLE_EQ(ramp.load_at(5.0), 0.5);
  EXPECT_DOUBLE_EQ(ramp.load_at(10.0), 0.8);
  EXPECT_DOUBLE_EQ(ramp.load_at(1000.0), 0.8);  // holds the target level
}

TEST(RampProfile, DescendingRampAllowed) {
  const RampProfile cooldown(1.0, 0.0, 4.0);
  EXPECT_DOUBLE_EQ(cooldown.load_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cooldown.load_at(2.0), 0.5);
  EXPECT_DOUBLE_EQ(cooldown.load_at(8.0), 0.0);
}

TEST(RampProfile, ValidatesDuration) {
  EXPECT_THROW(RampProfile(0.0, 1.0, 0.0), ConfigError);
}

// ---- bursts -----------------------------------------------------------------

TEST(BurstProfile, OnlyEmitsBaseOrPeak) {
  const BurstProfile bursts(0.2, 1.0, 0.5, 0.5, /*seed=*/42);
  for (double t = 0.0; t < 50.0; t += 0.25) {
    const double level = bursts.load_at(t);
    EXPECT_TRUE(level == 0.2 || level == 1.0) << "t=" << t << " level=" << level;
  }
}

TEST(BurstProfile, DeterministicPerSeedAndStableWithinWindow) {
  const BurstProfile a(0.0, 1.0, 1.0, 0.5, 7);
  const BurstProfile b(0.0, 1.0, 1.0, 0.5, 7);
  bool saw_base = false, saw_peak = false;
  for (int k = 0; k < 200; ++k) {
    const double t = k * 1.0;
    EXPECT_DOUBLE_EQ(a.load_at(t), b.load_at(t));
    EXPECT_DOUBLE_EQ(a.load_at(t), a.load_at(t + 0.999));  // constant inside a window
    (a.load_at(t) == 1.0 ? saw_peak : saw_base) = true;
  }
  EXPECT_TRUE(saw_base);  // p=0.5 over 200 windows: both outcomes occur
  EXPECT_TRUE(saw_peak);
}

TEST(BurstProfile, ProbabilityExtremes) {
  const BurstProfile never(0.3, 1.0, 1.0, 0.0, 1);
  const BurstProfile always(0.3, 1.0, 1.0, 1.0, 1);
  for (int k = 0; k < 50; ++k) {
    EXPECT_DOUBLE_EQ(never.load_at(k * 1.0), 0.3);
    EXPECT_DOUBLE_EQ(always.load_at(k * 1.0), 1.0);
  }
}

TEST(BurstProfile, ValidatesParameters) {
  EXPECT_THROW(BurstProfile(0.0, 1.0, 0.0, 0.5, 1), ConfigError);
  EXPECT_THROW(BurstProfile(0.0, 1.0, 1.0, 1.5, 1), ConfigError);
}

// ---- trace ------------------------------------------------------------------

std::vector<TraceProfile::Breakpoint> demo_points() {
  return {{0.0, 0.2}, {5.0, 0.8}, {10.0, 0.4}};
}

TEST(TraceProfile, StepHoldSemantics) {
  const TraceProfile trace(demo_points(), /*loop=*/false);
  EXPECT_DOUBLE_EQ(trace.load_at(0.0), 0.2);
  EXPECT_DOUBLE_EQ(trace.load_at(4.9), 0.2);
  EXPECT_DOUBLE_EQ(trace.load_at(5.0), 0.8);
  EXPECT_DOUBLE_EQ(trace.load_at(9.9), 0.8);
  EXPECT_DOUBLE_EQ(trace.load_at(10.0), 0.4);
  EXPECT_DOUBLE_EQ(trace.load_at(1e6), 0.4);  // hold-last without loop
}

TEST(TraceProfile, LoopWrapsAtNaturalSpan) {
  // Last segment inherits the preceding step length: span = 10 + 5 = 15 s.
  const TraceProfile trace(demo_points(), /*loop=*/true);
  EXPECT_DOUBLE_EQ(trace.span_s(), 15.0);
  EXPECT_DOUBLE_EQ(trace.load_at(12.0), 0.4);
  EXPECT_DOUBLE_EQ(trace.load_at(15.0), 0.2);  // wrapped
  EXPECT_DOUBLE_EQ(trace.load_at(20.5), 0.8);  // 20.5 -> 5.5
}

TEST(TraceProfile, ExplicitSpanOverridesNatural) {
  const TraceProfile trace(demo_points(), /*loop=*/true, /*span_s=*/20.0);
  EXPECT_DOUBLE_EQ(trace.load_at(19.0), 0.4);
  EXPECT_DOUBLE_EQ(trace.load_at(21.0), 0.2);
}

TEST(TraceProfile, ValidatesBreakpoints) {
  EXPECT_THROW(TraceProfile({}, false), ConfigError);
  EXPECT_THROW(TraceProfile({{0.0, 0.5}, {0.0, 0.6}}, false), ConfigError);  // not increasing
  EXPECT_THROW(TraceProfile({{-1.0, 0.5}}, false), ConfigError);
  EXPECT_THROW(TraceProfile(demo_points(), true, 9.0), ConfigError);   // span < last time
  EXPECT_THROW(TraceProfile(demo_points(), true, 10.0), ConfigError);  // == last: level lost
}

class TraceCsvFixture : public testing::Test {
 protected:
  void SetUp() override {
    path_ = fs::temp_directory_path() /
            ("fs2_trace_" +
             std::string(testing::UnitTest::GetInstance()->current_test_info()->name()) +
             ".csv");
  }
  void TearDown() override { fs::remove(path_); }

  void write(const std::string& text) {
    std::ofstream out(path_);
    out << text;
  }

  fs::path path_;
};

TEST_F(TraceCsvFixture, ParsesHeaderCommentsAndRows) {
  write("# recorded datacenter load\ntime_s,load_pct\n0,20\n5, 80\n10,40\n");
  const TraceProfile trace = TraceProfile::from_csv(path_.string(), false);
  ASSERT_EQ(trace.breakpoints().size(), 3u);
  EXPECT_DOUBLE_EQ(trace.load_at(6.0), 0.8);
}

TEST_F(TraceCsvFixture, RejectsMalformedRows) {
  write("0,20\n5\n");
  EXPECT_THROW(TraceProfile::from_csv(path_.string(), false), ConfigError);
  write("0,20\n5,eighty\n");
  EXPECT_THROW(TraceProfile::from_csv(path_.string(), false), ConfigError);
  write("0,150\n");
  EXPECT_THROW(TraceProfile::from_csv(path_.string(), false), ConfigError);  // load > 100 %
  write("");
  EXPECT_THROW(TraceProfile::from_csv(path_.string(), false), ConfigError);
}

TEST(TraceProfileCsv, MissingFileThrows) {
  EXPECT_THROW(TraceProfile::from_csv("/nonexistent/fs2_trace.csv", false), ConfigError);
}

// ---- spec parser ------------------------------------------------------------

TEST(ParseProfile, ConstantInheritsCliLoadByDefault) {
  const ProfilePtr profile = parse_profile("constant", /*default_load=*/0.35, 0.1);
  EXPECT_STREQ(profile->kind(), "constant");
  EXPECT_DOUBLE_EQ(profile->load_at(0.0), 0.35);
}

TEST(ParseProfile, ConstantShorthandIsLoadPercent) {
  EXPECT_DOUBLE_EQ(parse_profile("constant:30", 1.0, 0.1)->load_at(0.0), 0.3);
  EXPECT_DOUBLE_EQ(parse_profile("constant:load=65", 1.0, 0.1)->load_at(0.0), 0.65);
}

TEST(ParseProfile, SquareDefaultsAndParameters) {
  const ProfilePtr wave = parse_profile("square:low=10,high=90,period=2,duty=0.25", 1.0, 0.1);
  EXPECT_STREQ(wave->kind(), "square");
  EXPECT_DOUBLE_EQ(wave->load_at(0.1), 0.9);
  EXPECT_DOUBLE_EQ(wave->load_at(0.6), 0.1);
  // Defaults: full swing, period = 10x the modulation window.
  const ProfilePtr dflt = parse_profile("square", 1.0, 0.1);
  EXPECT_DOUBLE_EQ(dflt->load_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(dflt->load_at(0.6), 0.0);   // past duty of the 1 s default period
  EXPECT_DOUBLE_EQ(dflt->load_at(1.0), 1.0);
}

TEST(ParseProfile, SineRampBurstsTrace) {
  EXPECT_STREQ(parse_profile("sine:low=0,high=100,period=4", 1.0, 0.1)->kind(), "sine");
  EXPECT_STREQ(parse_profile("ramp:from=0,to=100,duration=30", 1.0, 0.1)->kind(), "ramp");
  EXPECT_STREQ(parse_profile("bursts:base=20,peak=100,window=1,prob=25,seed=9", 1.0, 0.1)
                   ->kind(),
               "bursts");
  const auto csv = fs::temp_directory_path() / "fs2_parse_trace.csv";
  { std::ofstream(csv) << "0,10\n1,90\n"; }
  EXPECT_STREQ(parse_profile("trace:file=" + csv.string(), 1.0, 0.1)->kind(), "trace");
  EXPECT_STREQ(parse_profile("trace:" + csv.string() + ",loop=1", 1.0, 0.1)->kind(), "trace");
  fs::remove(csv);
}

TEST(ParseProfile, RejectsBadSpecs) {
  EXPECT_THROW(parse_profile("", 1.0, 0.1), ConfigError);
  EXPECT_THROW(parse_profile("sawtooth", 1.0, 0.1), ConfigError);
  EXPECT_THROW(parse_profile("sine:frequency=2", 1.0, 0.1), ConfigError);   // unknown key
  EXPECT_THROW(parse_profile("sine:low=10,low=20", 1.0, 0.1), ConfigError); // duplicate
  EXPECT_THROW(parse_profile("constant:130", 1.0, 0.1), ConfigError);       // >100 %
  EXPECT_THROW(parse_profile("square:period=abc", 1.0, 0.1), ConfigError);
  EXPECT_THROW(parse_profile("trace", 1.0, 0.1), ConfigError);              // file required
  EXPECT_THROW(parse_profile("square:low=1,high", 1.0, 0.1), ConfigError);  // bare non-first
}

// ---- phase clock ------------------------------------------------------------

TEST(PhaseClock, ElapsedIsMonotonicFromEpoch) {
  PhaseClock clock;
  const double a = clock.elapsed();
  const double b = clock.elapsed();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  clock.restart();
  EXPECT_LT(clock.elapsed(), 0.5);
}

TEST(PhaseClock, WindowMath) {
  EXPECT_EQ(PhaseClock::window_index(0.0, 0.1), 0);
  EXPECT_EQ(PhaseClock::window_index(0.05, 0.1), 0);
  EXPECT_EQ(PhaseClock::window_index(0.1, 0.1), 1);
  EXPECT_EQ(PhaseClock::window_index(2.34, 0.1), 23);
  EXPECT_DOUBLE_EQ(PhaseClock::window_start(2.34, 0.1), 2.3);
  EXPECT_DOUBLE_EQ(PhaseClock::window_start(0.05, 0.1), 0.0);
}

TEST(PhaseClock, WorkersAgreeOnWindowIndex) {
  // All threads sample the same clock concurrently: with windows far longer
  // than any scheduling jitter they must land in the same window — the
  // property that keeps duty cycles lockstep across workers.
  PhaseClock clock;
  constexpr int kThreads = 4;
  constexpr double kPeriod = 30.0;  // enormous vs. thread-start jitter
  std::barrier sync(kThreads);
  std::vector<std::int64_t> windows(kThreads, -1);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back([&, i] {
      sync.arrive_and_wait();
      windows[i] = PhaseClock::window_index(clock.elapsed(), kPeriod);
    });
  for (auto& thread : threads) thread.join();
  for (int i = 1; i < kThreads; ++i) EXPECT_EQ(windows[i], windows[0]);
}

// ---- campaign ---------------------------------------------------------------

TEST(Campaign, ParsesPhasesInOrder) {
  std::istringstream in(R"(# demo campaign
phase name=warmup duration=10 profile=constant:30

phase duration=20 profile=sine:low=10,high=90,period=5
phase name=peak duration=5.5 profile=square function=FUNC_FMA_256_ZEN2
)");
  const Campaign campaign = Campaign::parse(in, "<test>");
  ASSERT_EQ(campaign.size(), 3u);
  EXPECT_EQ(campaign.phases()[0].name, "warmup");
  EXPECT_DOUBLE_EQ(campaign.phases()[0].duration_s, 10.0);
  EXPECT_EQ(campaign.phases()[0].profile_spec, "constant:30");
  EXPECT_FALSE(campaign.phases()[0].function.has_value());
  EXPECT_EQ(campaign.phases()[1].name, "phase2");  // defaulted
  EXPECT_EQ(*campaign.phases()[2].function, "FUNC_FMA_256_ZEN2");
  EXPECT_DOUBLE_EQ(campaign.total_duration_s(), 35.5);
}

void expect_campaign_error(const std::string& text, const std::string& needle) {
  std::istringstream in(text);
  try {
    Campaign::parse(in, "<test>");
    FAIL() << "expected ConfigError for: " << text;
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message was: " << e.what();
  }
}

TEST(Campaign, RejectsMalformedFiles) {
  expect_campaign_error("", "no phases");
  expect_campaign_error("stage duration=5\n", "expected 'phase");
  expect_campaign_error("phase profile=constant\n", "missing duration");
  expect_campaign_error("phase duration=0\n", "duration must be > 0");
  expect_campaign_error("phase duration=-3\n", "duration must be > 0");
  expect_campaign_error("phase duration=5 color=red\n", "unknown key 'color'");
  expect_campaign_error("phase duration=5 profile\n", "not key=value");
  expect_campaign_error("phase duration=5 profile=sawtooth\n", "unknown profile kind");
  expect_campaign_error("phase duration=5 name=\n", "empty value");
  // Errors carry the line number of the offending phase.
  expect_campaign_error("phase name=ok duration=5\nphase duration=bad\n", "line 2");
}

TEST(Campaign, RejectsDuplicatePhaseNames) {
  // Phase names key summary-row attribution and the cluster CSV merge; a
  // duplicate would silently fold two phases' rows together.
  expect_campaign_error("phase name=hold duration=5\nphase name=hold duration=5\n",
                        "duplicate phase name 'hold'");
  // Defaulted names collide with explicit ones too ("phase2" is the default
  // for the second line).
  expect_campaign_error("phase name=phase2 duration=5\nphase duration=5\n",
                        "duplicate phase name 'phase2'");
  // Same name on different campaigns is fine — state must not leak.
  std::istringstream ok("phase name=hold duration=5\n");
  EXPECT_EQ(Campaign::parse(ok, "<test>").size(), 1u);
}

TEST(Campaign, ParsesTargetThreadsAndFreqKeys) {
  std::istringstream in(R"(phase name=low  duration=30 target=power=200W
phase name=high duration=30 target=temp=85C,kp=2 threads=32 freq=2200
phase name=open duration=10 profile=constant:50
)");
  const Campaign campaign = Campaign::parse(in, "<test>");
  ASSERT_EQ(campaign.size(), 3u);
  EXPECT_EQ(*campaign.phases()[0].target_spec, "power=200W");
  EXPECT_FALSE(campaign.phases()[0].threads.has_value());
  EXPECT_EQ(*campaign.phases()[1].target_spec, "temp=85C,kp=2");
  EXPECT_EQ(*campaign.phases()[1].threads, 32);
  EXPECT_DOUBLE_EQ(*campaign.phases()[1].freq_mhz, 2200.0);
  EXPECT_FALSE(campaign.phases()[2].target_spec.has_value());
}

TEST(Campaign, RejectsMalformedThreadsAndFreq) {
  // target= specs are opaque strings to sched (the control layer validates
  // them in the campaign runner's resolve pass); threads/freq are ours.
  expect_campaign_error("phase duration=5 threads=0\n", "threads must be > 0");
  expect_campaign_error("phase duration=5 threads=two\n", "not a non-negative integer");
  // Would wrap into a small positive int without the range guard.
  expect_campaign_error("phase duration=5 threads=4294967301\n", "implausibly large");
  expect_campaign_error("phase duration=5 freq=-100\n", "freq must be > 0");
}

TEST(Campaign, LoadRejectsMissingFile) {
  EXPECT_THROW(Campaign::load("/nonexistent/fs2.campaign"), ConfigError);
}

// ---- ThreadManager integration ---------------------------------------------

bool host_has_fma() {
  return arch::host_identity().features.covers(
      payload::find_function("FUNC_FMA_256_ZEN2").mix.required);
}

payload::CompiledPayload small_payload() {
  payload::CompileOptions options;
  options.unroll = 64;
  options.ram_region_bytes = 1 << 20;
  const auto& fn = payload::find_function("FUNC_FMA_256_ZEN2");
  return payload::compile_payload(fn.mix, payload::InstructionGroups::parse("REG:2,L1_L:1"),
                                  arch::CacheHierarchy::zen2(), options);
}

TEST(ThreadManagerSched, DefaultsToConstantProfileFromLoad) {
  if (!host_has_fma()) GTEST_SKIP() << "host lacks FMA";
  auto payload = small_payload();
  kernel::RunOptions options;
  options.cpus = {-1, -1};
  options.load = 0.4;
  kernel::ThreadManager manager(payload, options);
  EXPECT_TRUE(manager.profile().constant());
  EXPECT_DOUBLE_EQ(manager.profile().load_at(0.0), 0.4);
}

TEST(ThreadManagerSched, RunsUnderDynamicProfile) {
  if (!host_has_fma()) GTEST_SKIP() << "host lacks FMA";
  auto payload = small_payload();
  kernel::RunOptions options;
  options.cpus = {-1, -1};
  options.period_s = 0.02;
  options.profile = std::make_shared<SineProfile>(0.3, 1.0, 0.2);
  kernel::ThreadManager manager(payload, options);
  manager.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  manager.stop();
  EXPECT_GT(manager.total_iterations(), 0u);
  // The shared epoch was re-anchored by start(), not construction time.
  EXPECT_LT(manager.phase_clock().elapsed(), 5.0);
}

TEST(ThreadManagerSched, ZeroLoadWindowsExecuteNothing) {
  if (!host_has_fma()) GTEST_SKIP() << "host lacks FMA";
  auto payload = small_payload();
  kernel::RunOptions options;
  options.cpus = {-1};
  options.profile = std::make_shared<ConstantProfile>(0.0);
  options.period_s = 0.05;
  kernel::ThreadManager manager(payload, options);
  manager.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  manager.stop();
  EXPECT_EQ(manager.total_iterations(), 0u);
}

TEST(ThreadManagerSched, ValidatesPeriodAndOffset) {
  if (!host_has_fma()) GTEST_SKIP() << "host lacks FMA";
  auto payload = small_payload();
  kernel::RunOptions bad_period;
  bad_period.cpus = {-1};
  bad_period.period_s = 0.0;
  EXPECT_THROW(kernel::ThreadManager(payload, bad_period), Error);
  kernel::RunOptions bad_offset;
  bad_offset.cpus = {-1};
  bad_offset.phase_offset_s = -0.1;
  EXPECT_THROW(kernel::ThreadManager(payload, bad_offset), Error);
}

}  // namespace
}  // namespace fs2::sched
