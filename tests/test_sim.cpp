// Tests for the microarchitecture power/performance simulator — the
// substitute for the paper's physical testbeds. These tests pin down the
// *shape* results of the paper's evaluation (who wins, orderings,
// crossovers, throttle behaviour) plus coarse absolute anchors.

#include <gtest/gtest.h>

#include "payload/compiler.hpp"
#include "payload/mix.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace fs2::sim {
namespace {

using payload::DataInitPolicy;
using payload::InstructionGroups;
using payload::MemoryLevel;

const arch::CacheHierarchy& zen2_caches() {
  static const auto caches = arch::CacheHierarchy::zen2();
  return caches;
}

const payload::InstructionMix& fma_mix() {
  static const auto mix = payload::find_function("FUNC_FMA_256_ZEN2").mix;
  return mix;
}

payload::PayloadStats analyze(const std::string& groups, std::uint32_t unroll = 0) {
  payload::CompileOptions options;
  options.unroll = unroll;
  return payload::analyze_payload(fma_mix(), InstructionGroups::parse(groups), zen2_caches(),
                                  options);
}

Simulator zen2_sim() { return Simulator(MachineConfig::zen2_epyc7502_2s()); }

WorkloadPoint run(const Simulator& sim, const std::string& groups, double mhz,
                  DataInitPolicy policy = DataInitPolicy::kSafe) {
  RunConditions cond;
  cond.freq_mhz = mhz;
  cond.policy = policy;
  return sim.run(analyze(groups), cond);
}

// ---- machine config ---------------------------------------------------------

TEST(MachineConfig, TableIITopology) {
  const MachineConfig cfg = MachineConfig::zen2_epyc7502_2s();
  EXPECT_EQ(cfg.total_cores(), 64);      // Table II: 2x 32 cores
  EXPECT_EQ(cfg.total_threads(), 128);   // SMT enabled
  ASSERT_EQ(cfg.pstates.size(), 3u);     // 1500, 2200, 2500 MHz
  EXPECT_DOUBLE_EQ(cfg.nominal_mhz, 2500.0);
}

TEST(MachineConfig, VoltageInterpolation) {
  const MachineConfig cfg = MachineConfig::zen2_epyc7502_2s();
  EXPECT_DOUBLE_EQ(cfg.volts_at(1500), cfg.pstates.front().volts);
  EXPECT_DOUBLE_EQ(cfg.volts_at(2500), cfg.pstates.back().volts);
  EXPECT_DOUBLE_EQ(cfg.volts_at(1000), cfg.pstates.front().volts);  // clamped
  EXPECT_DOUBLE_EQ(cfg.volts_at(3000), cfg.pstates.back().volts);
  const double mid = cfg.volts_at(1850);
  EXPECT_GT(mid, cfg.pstates.front().volts);
  EXPECT_LT(mid, cfg.pstates[1].volts);
}

TEST(MachineConfig, EmptyPstatesThrows) {
  MachineConfig cfg;
  EXPECT_THROW(cfg.volts_at(1000), Error);
}

// ---- Sec. III-D: data-dependent power (infinity bug) ---------------------------

TEST(SimPower, InfinityBugLowersPower) {
  // Paper: v2.0 draws 314.1 W vs v1.7.4's 305.6 W on REG-only at nominal.
  const Simulator sim = zen2_sim();
  const double safe = run(sim, "REG:1", 2500).power_w;
  const double bug = run(sim, "REG:1", 2500, DataInitPolicy::kV174InfinityBug).power_w;
  EXPECT_GT(safe, bug);
  EXPECT_NEAR(safe, 314.1, 314.1 * 0.05);     // within 5 % of the paper
  EXPECT_NEAR(bug, 305.6, 305.6 * 0.05);
  EXPECT_NEAR(safe - bug, 8.5, 4.0);          // the delta itself
}

// ---- Fig. 9: memory levels raise power, IPC stays high --------------------------

TEST(SimPower, EachMemoryLevelAddsPower) {
  const Simulator sim = zen2_sim();
  const double none = run(sim, "REG:1", 1500).power_w;
  const double l1 = run(sim, "L1_LS:12,REG:6", 1500).power_w;
  const double l2 = run(sim, "L2_LS:3,L1_LS:12,REG:6", 1500).power_w;
  const double l3 = run(sim, "L3_LS:1,L2_LS:3,L1_LS:12,REG:6", 1500).power_w;
  const double ram = run(sim, "RAM_L:1,L3_LS:2,L2_LS:6,L1_LS:24,REG:12", 1500).power_w;
  EXPECT_LT(none, l1);
  EXPECT_LT(l1, l2);
  EXPECT_LT(l2, l3);
  EXPECT_LT(l3, ram);
}

TEST(SimPower, Fig9AbsoluteAnchors) {
  // Paper Fig. 9: 235 W with no memory accesses rising to 437 W with the
  // full hierarchy at the best ratio, an 86 % increase.
  const Simulator sim = zen2_sim();
  const double none = run(sim, "REG:1", 1500).power_w;
  const double full = run(sim, "RAM_L:3,L3_LS:3,L2_LS:10,L1_LS:77,REG:37", 1500).power_w;
  EXPECT_NEAR(none, 235.0, 235.0 * 0.05);
  EXPECT_NEAR(full, 437.0, 437.0 * 0.06);
  EXPECT_GT(full / none, 1.6);
  EXPECT_LT(full / none, 2.1);
}

TEST(SimPerf, IpcDropsOnlyModeratelyWithFullHierarchy) {
  // Fig. 9: IPC drops from 4 to only ~3.4 at the highest-power point.
  const Simulator sim = zen2_sim();
  const auto none = run(sim, "REG:1", 1500);
  const auto full = run(sim, "RAM_L:3,L3_LS:3,L2_LS:10,L1_LS:77,REG:37", 1500);
  EXPECT_NEAR(none.ipc_per_core, 4.0, 0.3);
  EXPECT_GT(full.ipc_per_core, 3.0);
  EXPECT_LT(full.ipc_per_core, none.ipc_per_core);
}

TEST(SimPerf, NoThrottlingAt1500) {
  // Fig. 9 runs at 1500 MHz precisely to avoid throttling.
  const Simulator sim = zen2_sim();
  for (const char* groups :
       {"REG:1", "L1_LS:2,REG:1", "RAM_L:3,L3_LS:3,L2_LS:10,L1_LS:77,REG:37"}) {
    const auto point = run(sim, groups, 1500);
    EXPECT_FALSE(point.throttled) << groups;
    EXPECT_DOUBLE_EQ(point.achieved_mhz, 1500.0) << groups;
  }
}

// ---- Fig. 8: unroll factor, fetch source, and nominal-frequency throttle -------

TEST(SimFrontend, FetchSourceTransitions) {
  const Simulator sim = zen2_sim();
  auto source_at = [&](std::uint32_t unroll) {
    RunConditions cond;
    cond.freq_mhz = 1500;
    return sim.run(analyze("L1_L:1", unroll), cond).fetch_source;
  };
  EXPECT_EQ(source_at(256), FetchSource::kOpCache);
  // Paper: leaves the op cache at u ~ 1000 (4096 micro-ops / ~4 per set)
  // and the L1-I at u ~ 2000.
  EXPECT_EQ(source_at(1200), FetchSource::kL1I);
  EXPECT_EQ(source_at(4096), FetchSource::kL2);
}

TEST(SimFrontend, PowerIncreasesWithFetchDistance) {
  const Simulator sim = zen2_sim();
  auto power_at = [&](std::uint32_t unroll, double mhz) {
    RunConditions cond;
    cond.freq_mhz = mhz;
    return sim.run(analyze("L1_L:1", unroll), cond).power_w;
  };
  // At 1500 and 2200 MHz (no throttling): op cache < L1-I < L2.
  for (double mhz : {1500.0, 2200.0}) {
    EXPECT_LT(power_at(256, mhz), power_at(1200, mhz)) << mhz;
    EXPECT_LT(power_at(1200, mhz), power_at(4096, mhz)) << mhz;
  }
}

TEST(SimFrontend, NominalFrequencyThrottlesOnlyLargeCase) {
  // Fig. 8's surprise: at nominal 2500 MHz the L2-resident loop throttles
  // (2.5 -> 2.4 GHz) while op-cache and L1-I loops do not.
  const Simulator sim = zen2_sim();
  auto point_at = [&](std::uint32_t unroll) {
    RunConditions cond;
    cond.freq_mhz = 2500;
    return sim.run(analyze("L1_L:1", unroll), cond);
  };
  EXPECT_FALSE(point_at(256).throttled);
  EXPECT_FALSE(point_at(1200).throttled);
  const auto large = point_at(4096);
  EXPECT_TRUE(large.throttled);
  EXPECT_NEAR(large.achieved_mhz, 2400.0, 100.0);
}

TEST(SimFrontend, IpcStableAcrossFetchSources) {
  // Paper: "instruction throughput does not decrease when instructions have
  // to be served from the L2 cache".
  const Simulator sim = zen2_sim();
  auto ipc_at = [&](std::uint32_t unroll) {
    RunConditions cond;
    cond.freq_mhz = 1500;
    return sim.run(analyze("L1_L:1", unroll), cond).ipc_per_core;
  };
  EXPECT_NEAR(ipc_at(1200), ipc_at(4096), 0.15);
}

// ---- Fig. 12: cross-frequency behaviour -----------------------------------------

TEST(SimThrottle, MemoryHeavyWorkloadsThrottleAtHighFrequency) {
  const Simulator sim = zen2_sim();
  const char* heavy = "RAM_L:3,L3_LS:3,L2_LS:10,L1_LS:77,REG:37";
  const auto at_2200 = run(sim, heavy, 2200);
  const auto at_2500 = run(sim, heavy, 2500);
  EXPECT_TRUE(at_2200.throttled);
  EXPECT_TRUE(at_2500.throttled);
  EXPECT_LT(at_2200.achieved_mhz, 2200.0);
  EXPECT_LT(at_2500.achieved_mhz, 2500.0);
  // Power flattens near the governor's operating point (512.2 vs 514.4 in
  // Fig. 12a) instead of scaling with the requested clock.
  EXPECT_NEAR(at_2200.power_w, at_2500.power_w, at_2500.power_w * 0.02);
}

TEST(SimThrottle, LighterWorkloadThrottlesLess) {
  // Fig. 12c: the workload optimized for 2500 MHz (fewer memory accesses)
  // reaches a higher achieved frequency than the one optimized for 1500.
  const Simulator sim = zen2_sim();
  const auto heavy = run(sim, "RAM_L:4,L3_LS:4,L2_LS:12,L1_LS:77,REG:30", 2500);
  const auto light = run(sim, "RAM_L:1,L3_LS:2,L2_LS:6,L1_LS:60,REG:60", 2500);
  EXPECT_GT(light.achieved_mhz, heavy.achieved_mhz);
}

TEST(SimPerf, HigherFrequencyLowersIpcForMemoryHeavyWorkloads) {
  // Fig. 12b: opt-1500 run at higher clocks loses IPC (stall cycles grow).
  const Simulator sim = zen2_sim();
  const char* heavy = "RAM_L:3,L3_LS:3,L2_LS:10,L1_LS:77,REG:37";
  const double ipc_1500 = run(sim, heavy, 1500).ipc_per_core;
  const double ipc_2500 = run(sim, heavy, 2500).ipc_per_core;
  EXPECT_GT(ipc_1500, ipc_2500);
  EXPECT_NEAR(ipc_1500, 3.39, 0.5);   // paper: 3.39
  EXPECT_NEAR(ipc_2500, 2.61, 0.8);   // paper: 2.61
}

// ---- property sweeps -------------------------------------------------------------

class FrequencySweep : public testing::TestWithParam<const char*> {};

TEST_P(FrequencySweep, UnthrottledPowerMonotoneInFrequency) {
  // For workloads below the EDC budget, requesting a higher P-state never
  // lowers power; achieved frequency never exceeds the request.
  const Simulator sim = zen2_sim();
  double prev_power = 0.0;
  for (double mhz : {1500.0, 1700.0, 1900.0, 2100.0}) {
    const auto point = run(sim, GetParam(), mhz);
    EXPECT_LE(point.achieved_mhz, mhz + 1e-9);
    if (!point.throttled) {
      EXPECT_GE(point.power_w, prev_power) << GetParam() << " @ " << mhz;
      prev_power = point.power_w;
    }
  }
}

TEST_P(FrequencySweep, GflopsConsistentWithIpc) {
  // Cross-check two independently derived outputs: FLOP rate must equal
  // flops/iteration x iterations/s, which is tied to IPC via cycles.
  const Simulator sim = zen2_sim();
  const auto stats = analyze(GetParam());
  RunConditions cond;
  cond.freq_mhz = 1500;
  const auto point = sim.run(stats, cond);
  const double iterations_per_second =
      point.achieved_mhz * 1e6 / point.cycles_per_iteration;
  const int smt = 2;  // full machine: both hardware threads active
  const double expected_gflops = static_cast<double>(stats.flops_per_iteration) * smt *
                                 64 * iterations_per_second / 1e9;
  EXPECT_NEAR(point.gflops, expected_gflops, expected_gflops * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Workloads, FrequencySweep,
                         testing::Values("REG:1", "L1_LS:2,REG:1",
                                         "L2_LS:1,L1_LS:6,REG:3",
                                         "RAM_L:1,L3_LS:2,L2_LS:6,L1_LS:24,REG:12"));

TEST(SimProperties, PowerMonotoneInThreadCount) {
  const Simulator sim = zen2_sim();
  const auto stats = analyze("L1_LS:2,REG:1");
  double prev = 0.0;
  for (int threads : {8, 16, 32, 64, 128}) {
    RunConditions cond;
    cond.freq_mhz = 1500;
    cond.threads = threads;
    const double power = sim.run(stats, cond).power_w;
    // Strictly increasing while cores are being filled; adding SMT siblings
    // must never *reduce* power (it adds nothing for a workload that
    // already saturates the 4-wide pipeline with one thread).
    if (threads <= 64) EXPECT_GT(power, prev) << threads;
    else EXPECT_GE(power, prev) << threads;
    prev = power;
  }
}

TEST(SimProperties, SmallerSkuDrawsLessPower) {
  // Sec. III-A: sibling SKUs share the microarchitecture but differ in
  // core count — and therefore in total draw and per-core memory headroom.
  MachineConfig small = MachineConfig::zen2_epyc7502_2s();
  small.cores_per_socket = 8;
  const auto stats = analyze("RAM_L:1,L3_LS:2,L2_LS:6,L1_LS:24,REG:12");
  RunConditions cond;
  cond.freq_mhz = 2200;
  const auto big_point = Simulator(MachineConfig::zen2_epyc7502_2s()).run(stats, cond);
  const auto small_point = Simulator(small).run(stats, cond);
  EXPECT_LT(small_point.power_w, big_point.power_w);
  // Fewer cores contending for the same DRAM: per-core IPC is no worse.
  EXPECT_GE(small_point.ipc_per_core, big_point.ipc_per_core - 1e-9);
}

// ---- special workloads & traces ----------------------------------------------------

TEST(SimSpecial, IdleBelowLowPowerBelowStress) {
  const Simulator sim = zen2_sim();
  const double idle = sim.idle().power_w;
  const double low = sim.low_power_loop().power_w;
  const double stress = run(sim, "REG:1", 2500).power_w;
  EXPECT_LT(idle, low);
  EXPECT_LT(low, stress);
  EXPECT_GT(idle, 50.0);   // a 2S server never idles at zero
  EXPECT_LT(idle, 200.0);
}

TEST(SimSpecial, MoreThreadsMorePower) {
  const Simulator sim = zen2_sim();
  const auto stats = analyze("REG:1");
  RunConditions half;
  half.freq_mhz = 1500;
  half.threads = 32;
  RunConditions full;
  full.freq_mhz = 1500;
  const double p_half = sim.run(stats, half).power_w;
  const double p_full = sim.run(stats, full).power_w;
  EXPECT_LT(p_half, p_full);
}

TEST(SimSpecial, GpuStressAddsPerGpuPower) {
  // Fig. 2: each GPU adds 29 W idle to 156 W stressed.
  const Simulator with_gpu(MachineConfig::haswell_e5_2680v3_2s(4));
  const Simulator without(MachineConfig::haswell_e5_2680v3_2s(0));
  const auto stats = analyze("REG:1");
  RunConditions cond;
  cond.freq_mhz = 2000;
  RunConditions gpu_cond = cond;
  gpu_cond.gpu_stress = true;
  const double base = without.run(stats, cond).power_w;
  const double gpu_idle = with_gpu.run(stats, cond).power_w;
  const double gpu_stress = with_gpu.run(stats, gpu_cond).power_w;
  EXPECT_NEAR(gpu_idle - base, 4 * 29.0 + 110.0, 1.0);  // 4 GPUs idle + platform
  EXPECT_NEAR(gpu_stress - gpu_idle, 4 * (156.0 - 29.0), 1.0);
}

TEST(SimTrace, ColdStartRampsTowardSteadyState) {
  const Simulator sim = zen2_sim();
  const auto point = run(sim, "REG:1", 1500);
  const auto trace = sim.power_trace(point, 240.0, 20.0, 42);
  ASSERT_EQ(trace.size(), 4800u);
  // First samples sit below the steady state; late samples surround it.
  const std::vector<double> head(trace.begin(), trace.begin() + 40);
  const std::vector<double> tail(trace.end() - 400, trace.end());
  EXPECT_LT(stats::mean(head), stats::mean(tail));
  EXPECT_NEAR(stats::mean(tail), point.power_w, point.power_w * 0.01);
}

TEST(SimTrace, WarmStartShowsNoRamp) {
  // Fig. 7: after the 240 s preheat, candidate switches show no power dip.
  const Simulator sim = zen2_sim();
  const auto point = run(sim, "REG:1", 1500);
  const auto trace = sim.power_trace(point, 10.0, 20.0, 42, /*warm_start_s=*/240.0);
  const std::vector<double> head(trace.begin(), trace.begin() + 40);
  EXPECT_NEAR(stats::mean(head), point.power_w, point.power_w * 0.01);
}

TEST(SimTrace, DeterministicPerSeed) {
  const Simulator sim = zen2_sim();
  const auto point = run(sim, "REG:1", 1500);
  EXPECT_EQ(sim.power_trace(point, 5, 20, 1), sim.power_trace(point, 5, 20, 1));
  EXPECT_NE(sim.power_trace(point, 5, 20, 1), sim.power_trace(point, 5, 20, 2));
}

TEST(SimTrace, RejectsInvalidParameters) {
  const Simulator sim = zen2_sim();
  const auto point = run(sim, "REG:1", 1500);
  EXPECT_THROW(sim.power_trace(point, 0, 20, 1), Error);
  EXPECT_THROW(sim.power_trace(point, 5, 0, 1), Error);
}

// ---- Haswell testbed (Fig. 2) ---------------------------------------------------------

TEST(SimHaswell, Fig2Ordering) {
  const Simulator sim(MachineConfig::haswell_e5_2680v3_2s(0));
  const auto caches = arch::CacheHierarchy::haswell_ep();
  const auto& mix = payload::find_function("FUNC_FMA_256_HASWELL").mix;
  auto hsw = [&](const char* groups) {
    RunConditions cond;
    cond.freq_mhz = 2000;  // Fig. 2 pins 2000 MHz to dodge AVX frequencies
    return sim
        .run(payload::analyze_payload(mix, InstructionGroups::parse(groups), caches), cond)
        .power_w;
  };
  const double idle = sim.idle().power_w;
  const double low = sim.low_power_loop(2000).power_w;
  const double reg = hsw("REG:1");
  const double l2 = hsw("L2_LS:1,L1_LS:4,REG:2");
  const double l3 = hsw("L3_LS:1,L2_LS:3,L1_LS:12,REG:6");
  const double ram = hsw("RAM_L:1,L3_LS:2,L2_LS:5,L1_LS:25,REG:12");
  EXPECT_LT(idle, low);
  EXPECT_LT(low, reg);
  EXPECT_LT(reg, l2);
  EXPECT_LT(l2, l3);
  EXPECT_LT(l3, ram);
  // The 2018 Taurus CDF (Fig. 1) tops out at 359.9 W — full-tilt
  // FIRESTARTER is the most power-hungry thing those nodes ever ran.
  EXPECT_GT(ram, 255.0);
  EXPECT_LT(ram, 375.0);
}

}  // namespace
}  // namespace fs2::sim
