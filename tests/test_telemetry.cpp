// Tests for the streaming telemetry layer: Welford/P² parity against the
// batch statistics on identical sample streams, start/stop-delta trim-window
// edge cases, ring-buffer wraparound, and the bus/sink fan-out that the
// measurement CSV, --control-log, and --record-trace ride on.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <vector>

#include "control/controlled_profile.hpp"
#include "control/feedback_loop.hpp"
#include "control/setpoint.hpp"
#include "metrics/measurement.hpp"
#include "sched/trace_recorder.hpp"
#include "telemetry/bus.hpp"
#include "telemetry/ring_buffer.hpp"
#include "telemetry/sinks.hpp"
#include "telemetry/streaming_aggregator.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace fs2::telemetry {
namespace {

// ---- batch reference (the pre-streaming implementation's math) --------------

struct BatchSummary {
  std::size_t samples = 0;
  double mean = 0.0, stddev = 0.0, min = 0.0, max = 0.0;
};

/// Exactly the old TimeSeries::summarize: trim against the last sample's
/// time, then batch-aggregate with util/stats.
BatchSummary batch_summarize(const std::vector<Sample>& samples, double start_delta_s,
                             double stop_delta_s) {
  BatchSummary result;
  if (samples.empty()) return result;
  const double end = samples.back().time_s;
  std::vector<double> values;
  for (const Sample& s : samples)
    if (s.time_s >= start_delta_s && s.time_s <= end - stop_delta_s) values.push_back(s.value);
  if (values.empty()) return result;
  result.samples = values.size();
  result.mean = stats::mean(values);
  result.stddev = stats::stddev(values);
  result.min = stats::min(values);
  result.max = stats::max(values);
  return result;
}

std::vector<Sample> noisy_stream(std::size_t n, double hz, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Sample> samples;
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    samples.push_back(Sample{static_cast<double>(i) / hz, 300.0 + 25.0 * rng.normal()});
  return samples;
}

// ---- streaming vs batch parity ----------------------------------------------

TEST(StreamingAggregator, WelfordMatchesBatchStatsExactly) {
  const std::vector<Sample> samples = noisy_stream(20000, 20.0, 42);
  StreamingAggregator aggregator(5.0, 2.0);
  for (const Sample& s : samples) aggregator.add(s.time_s, s.value);

  const StreamingSummary streaming = aggregator.summarize();
  const BatchSummary batch = batch_summarize(samples, 5.0, 2.0);
  ASSERT_GT(batch.samples, 0u);
  EXPECT_EQ(streaming.samples, batch.samples);  // identical trim decisions
  EXPECT_NEAR(streaming.mean, batch.mean, 1e-9 * std::abs(batch.mean));
  EXPECT_NEAR(streaming.stddev, batch.stddev, 1e-9 * std::max(batch.stddev, 1.0));
  EXPECT_DOUBLE_EQ(streaming.min, batch.min);  // min/max are exact
  EXPECT_DOUBLE_EQ(streaming.max, batch.max);
  EXPECT_FALSE(streaming.trim_fallback);
}

TEST(StreamingAggregator, QuantilesTrackBatchPercentiles) {
  // P² is an estimator: for a 20k-sample noisy stream the p50/p95/p99
  // estimates must land within a fraction of the distribution's spread of
  // the exact percentiles (sigma = 25 here).
  const std::vector<Sample> samples = noisy_stream(20000, 20.0, 7);
  StreamingAggregator aggregator(0.0, 0.0);
  std::vector<double> values;
  for (const Sample& s : samples) {
    aggregator.add(s.time_s, s.value);
    values.push_back(s.value);
  }
  const StreamingSummary streaming = aggregator.summarize();
  EXPECT_NEAR(streaming.p50, stats::percentile(values, 50.0), 1.0);
  EXPECT_NEAR(streaming.p95, stats::percentile(values, 95.0), 2.5);
  EXPECT_NEAR(streaming.p99, stats::percentile(values, 99.0), 4.0);
  EXPECT_LT(streaming.p50, streaming.p95);
  EXPECT_LT(streaming.p95, streaming.p99);
}

TEST(P2Quantile, ExactForSmallStreams) {
  // Below five observations the estimator falls back to the sorted array —
  // identical to stats::percentile.
  P2Quantile p50(0.5);
  const std::vector<double> values{9.0, 1.0, 5.0, 3.0};
  for (double v : values) p50.add(v);
  EXPECT_DOUBLE_EQ(p50.value(), stats::percentile(values, 50.0));
}

TEST(P2Quantile, ConvergesOnUniformStream) {
  P2Quantile p95(0.95);
  Xoshiro256 rng(13);
  for (int i = 0; i < 50000; ++i) p95.add(rng.uniform());
  EXPECT_NEAR(p95.value(), 0.95, 0.01);
}

// ---- trim-window edge cases -------------------------------------------------

TEST(StreamingAggregator, StopDeltaHoldbackStaysBounded) {
  // 2 s of stop delta at 20 Sa/s: the pending buffer may never hold more
  // than the window's worth of samples (+1 for the newest) — this is the
  // O(window) bound that unblocks week-long runs.
  StreamingAggregator aggregator(0.0, 2.0);
  for (int i = 0; i < 100000; ++i) {
    aggregator.add(i * 0.05, 1.0);
    EXPECT_LE(aggregator.pending(), 42u);
  }
  EXPECT_EQ(aggregator.summarize().samples, 100000u - 40u);  // tail held back
}

TEST(StreamingAggregator, TrimBoundariesAreInclusive) {
  // Batch semantics: t >= start && t <= end - stop, both inclusive.
  StreamingAggregator aggregator(10.0, 2.0);
  for (int t = 0; t <= 100; ++t) aggregator.add(t, t < 10 ? 1000.0 : 300.0);
  const StreamingSummary summary = aggregator.summarize();
  EXPECT_EQ(summary.samples, 89u);  // t in [10, 98]
  EXPECT_DOUBLE_EQ(summary.mean, 300.0);
  EXPECT_DOUBLE_EQ(summary.stddev, 0.0);
}

TEST(StreamingAggregator, OverTrimmedStreamFallsBackUntrimmed) {
  StreamingAggregator aggregator(5.0, 5.0);
  aggregator.add(0.0, 1.0);
  aggregator.add(1.0, 2.0);
  const StreamingSummary summary = aggregator.summarize();
  EXPECT_TRUE(summary.trim_fallback);
  EXPECT_EQ(summary.samples, 2u);
  EXPECT_DOUBLE_EQ(summary.mean, 1.5);
}

TEST(StreamingAggregator, SingleSampleInsideWindow) {
  StreamingAggregator aggregator(0.0, 0.0);
  aggregator.add(1.0, 7.0);
  const StreamingSummary summary = aggregator.summarize();
  EXPECT_FALSE(summary.trim_fallback);
  EXPECT_EQ(summary.samples, 1u);
  EXPECT_DOUBLE_EQ(summary.mean, 7.0);
  EXPECT_DOUBLE_EQ(summary.p99, 7.0);
}

TEST(StreamingAggregator, EmptyStreamSummarizesToZeroSamples) {
  StreamingAggregator aggregator(5.0, 2.0);
  const StreamingSummary summary = aggregator.summarize();
  EXPECT_EQ(summary.samples, 0u);
  EXPECT_FALSE(summary.trim_fallback);
}

TEST(StreamingAggregator, SummarizeIsIdempotentMidStream) {
  // Peeking must not consume held-back samples: summarize, keep streaming,
  // and the final result equals a never-peeked aggregator's.
  const std::vector<Sample> samples = noisy_stream(2000, 20.0, 99);
  StreamingAggregator peeked(5.0, 2.0), untouched(5.0, 2.0);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    peeked.add(samples[i].time_s, samples[i].value);
    untouched.add(samples[i].time_s, samples[i].value);
    if (i % 100 == 0) (void)peeked.summarize();
  }
  EXPECT_EQ(peeked.summarize().samples, untouched.summarize().samples);
  EXPECT_DOUBLE_EQ(peeked.summarize().mean, untouched.summarize().mean);
}

// ---- ring buffer ------------------------------------------------------------

TEST(RingBuffer, FillsThenWrapsOverwritingOldest) {
  RingBuffer<int> ring(4);
  EXPECT_TRUE(ring.empty());
  for (int i = 0; i < 3; ++i) ring.push(i);
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.front(), 0);
  EXPECT_EQ(ring.back(), 2);
  EXPECT_FALSE(ring.wrapped());
  for (int i = 3; i < 11; ++i) ring.push(i);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_TRUE(ring.wrapped());
  EXPECT_EQ(ring.snapshot(), (std::vector<int>{7, 8, 9, 10}));
  EXPECT_EQ(ring.front(), 7);
  EXPECT_EQ(ring.back(), 10);
  EXPECT_EQ(ring[2], 9);
}

TEST(RingBuffer, WrapsExactlyAtCapacityBoundary) {
  RingBuffer<int> ring(3);
  for (int i = 0; i < 3; ++i) ring.push(i);
  EXPECT_EQ(ring.snapshot(), (std::vector<int>{0, 1, 2}));
  ring.push(3);  // first eviction
  EXPECT_EQ(ring.snapshot(), (std::vector<int>{1, 2, 3}));
  int sum = 0;
  for (int v : ring) sum += v;  // iterator covers the wrapped layout
  EXPECT_EQ(sum, 6);
  ring.push(4);
  ring.push(5);  // total pushes = 2x capacity: head is back at 0...
  EXPECT_TRUE(ring.wrapped());  // ...but eviction must still be reported
  ring.clear();
  EXPECT_FALSE(ring.wrapped());
}

TEST(TimeSeries, TailIsBoundedWhileSummaryStaysExact) {
  metrics::TimeSeries series("x", "u", 0.0, 0.0, /*tail_capacity=*/64);
  for (int i = 0; i < 10000; ++i) series.add(i * 0.05, static_cast<double>(i));
  EXPECT_EQ(series.tail().size(), 64u);           // bounded retention...
  EXPECT_EQ(series.total_samples(), 10000u);      // ...full-stream aggregation
  EXPECT_EQ(series.summarize().samples, 10000u);
  EXPECT_DOUBLE_EQ(series.summarize().mean, (10000.0 - 1.0) / 2.0);
  EXPECT_DOUBLE_EQ(series.tail().back().value, 9999.0);
}

TEST(FeedbackLoop, TelemetryRingIsBounded) {
  // A loop driven far past its ring capacity keeps O(window) ticks and its
  // trailing statistics keep working on the retained window.
  auto profile = std::make_shared<control::ControlledProfile>(0.5);
  control::FeedbackLoop loop(control::Setpoint::parse("power=100W"), profile, 100.0, 0.5);
  const std::size_t capacity = loop.telemetry().capacity();
  EXPECT_LE(capacity, 65536u);
  for (std::size_t i = 1; i <= capacity + 500; ++i)
    loop.tick(0.25 * static_cast<double>(i), 100.0);
  EXPECT_EQ(loop.telemetry().size(), capacity);
  EXPECT_NEAR(loop.trailing_mean(10.0), 100.0, 1e-9);
  EXPECT_TRUE(loop.converged(10.0));
}

// ---- bus + sinks ------------------------------------------------------------

TEST(TelemetryBus, ChannelKeyedByNameAndUnit) {
  TelemetryBus bus;
  const ChannelId a = bus.channel("power", "W");
  const ChannelId same = bus.channel("power", "W");
  const ChannelId other_unit = bus.channel("power", "mW");
  EXPECT_EQ(a, same);
  EXPECT_NE(a, other_unit);
  EXPECT_EQ(bus.channel_count(), 2u);
}

TEST(TelemetryBus, PublishOutsidePhaseThrows) {
  TelemetryBus bus;
  const ChannelId ch = bus.channel("x", "u");
  EXPECT_THROW(bus.publish(ch, 0.0, 1.0), Error);
  EXPECT_THROW(bus.publish(ch + 1, 0.0, 1.0), Error);  // unknown channel
}

TEST(SummarySink, PerPhaseRowsWithPhaseTrimDeltas) {
  TelemetryBus bus;
  SummarySink sink;
  bus.attach(&sink);
  const ChannelId power = bus.channel("power", "W");

  bus.begin_phase("warm", 10.0, /*start=*/2.0, /*stop=*/0.0);
  for (int t = 0; t <= 9; ++t) bus.publish(power, t, t < 2 ? 1000.0 : 100.0);
  bus.begin_phase("hot", 10.0, 2.0, 0.0);  // implicitly ends "warm"
  for (int t = 0; t <= 9; ++t) bus.publish(power, t, t < 2 ? 1000.0 : 200.0);
  bus.finish();

  ASSERT_EQ(sink.rows().size(), 2u);
  EXPECT_EQ(sink.rows()[0].phase, "warm");
  EXPECT_DOUBLE_EQ(sink.rows()[0].mean, 100.0);  // warm-up spike trimmed
  EXPECT_EQ(sink.rows()[0].samples, 8u);
  EXPECT_EQ(sink.rows()[1].phase, "hot");
  EXPECT_DOUBLE_EQ(sink.rows()[1].mean, 200.0);
}

TEST(SummarySink, RowOrderFollowsFirstSampleArrival) {
  TelemetryBus bus;
  SummarySink sink;
  bus.attach(&sink);
  const ChannelId a = bus.channel("a", "u");
  const ChannelId b = bus.channel("b", "u");
  bus.begin_phase("", 10.0, 0.0, 0.0);
  bus.publish(b, 0.0, 1.0);  // b arrives first despite later registration
  bus.publish(a, 0.0, 2.0);
  bus.finish();
  ASSERT_EQ(sink.rows().size(), 2u);
  EXPECT_EQ(sink.rows()[0].name, "b");
  EXPECT_EQ(sink.rows()[1].name, "a");
}

TEST(SummarySink, HonorsChannelPolicies) {
  TelemetryBus bus;
  SummarySink sink;
  bus.attach(&sink);
  const ChannelId trimmed = bus.channel("trimmed", "u", TrimMode::kPhase);
  const ChannelId untrimmed = bus.channel("untrimmed", "u", TrimMode::kNone);
  const ChannelId hidden = bus.channel("hidden", "u", TrimMode::kNone, /*summarize=*/false);
  const ChannelId silent = bus.channel("silent", "u");
  (void)silent;

  bus.begin_phase("", 10.0, /*start=*/5.0, 0.0);
  for (int t = 0; t <= 9; ++t) {
    bus.publish(trimmed, t, t < 5 ? 0.0 : 10.0);
    bus.publish(untrimmed, t, t < 5 ? 0.0 : 10.0);
    bus.publish(hidden, t, 1.0);
  }
  bus.finish();

  ASSERT_EQ(sink.rows().size(), 2u);  // hidden suppressed, silent empty
  EXPECT_EQ(sink.rows()[0].name, "trimmed");
  EXPECT_DOUBLE_EQ(sink.rows()[0].mean, 10.0);   // start delta applied
  EXPECT_DOUBLE_EQ(sink.rows()[1].mean, 5.0);    // untrimmed sees the zeros
}

TEST(SummarySink, TrimFallbackReportsUntrimmedAggregate) {
  TelemetryBus bus;
  SummarySink sink;
  bus.attach(&sink);
  const ChannelId ch = bus.channel("short", "u");
  bus.begin_phase("", 1.0, /*start=*/5.0, /*stop=*/2.0);  // deltas eat the phase
  bus.publish(ch, 0.0, 4.0);
  bus.publish(ch, 0.5, 6.0);
  bus.finish();
  ASSERT_EQ(sink.rows().size(), 1u);
  EXPECT_DOUBLE_EQ(sink.rows()[0].mean, 5.0);
  EXPECT_EQ(sink.rows()[0].samples, 2u);
}

TEST(ControlLogSink, AssemblesTickRowsWithPhaseOffset) {
  TelemetryBus bus;
  std::ostringstream log;
  control::ControlLogSink sink(log);
  bus.attach(&sink);

  auto profile = std::make_shared<control::ControlledProfile>(0.5);
  control::FeedbackLoop loop(control::Setpoint::parse("power=100W"), profile, 100.0, 0.5);
  loop.attach_bus(&bus);
  bus.begin_phase("hold", 10.0, 0.0, 0.0);
  // Fake a second phase's offset by ending one first.
  loop.tick(0.25, 90.0);
  bus.finish();

  const std::string text = log.str();
  // time, setpoint, measurement, error = 10, level, phase — one row per tick.
  EXPECT_NE(text.find("0.250000,100,90,10,"), std::string::npos);
  EXPECT_NE(text.find(",hold\n"), std::string::npos);
}

TEST(TraceSink, RecordsLoadChannelShiftedToCampaignTime) {
  TelemetryBus bus;
  sched::TraceRecorder recorder;
  sched::TraceSink sink("load-level", &recorder, /*out=*/nullptr);  // record only
  bus.attach(&sink);
  const ChannelId load = bus.channel("load-level", "fraction");
  const ChannelId noise = bus.channel("power", "W");

  bus.begin_phase("a", 10.0, 0.0, 0.0);
  bus.publish(load, 0.0, 0.2);
  bus.publish(noise, 0.0, 400.0);  // other channels must be ignored
  bus.publish(load, 5.0, 0.8);
  bus.begin_phase("b", 10.0, 0.0, 0.0);  // offset advances to 10 s
  bus.publish(load, 1.0, 0.4);
  bus.finish();

  ASSERT_EQ(recorder.breakpoints().size(), 3u);
  EXPECT_DOUBLE_EQ(recorder.breakpoints()[0].time_s, 0.0);
  EXPECT_DOUBLE_EQ(recorder.breakpoints()[1].time_s, 5.0);
  EXPECT_DOUBLE_EQ(recorder.breakpoints()[2].time_s, 11.0);  // 10 s offset + 1 s
  EXPECT_DOUBLE_EQ(recorder.breakpoints()[2].load, 0.4);
}

TEST(TraceSink, StreamingReleasesWrittenRows) {
  // With an output stream the sink flushes rows as they collapse AND prunes
  // them from memory: a long streamed trace retains O(1) breakpoints while
  // the file carries them all.
  TelemetryBus bus;
  sched::TraceRecorder recorder;
  std::ostringstream out;
  sched::TraceSink sink("load-level", &recorder, &out);
  bus.attach(&sink);
  const ChannelId load = bus.channel("load-level", "fraction");
  bus.begin_phase("", 1e9, 0.0, 0.0);
  for (int i = 0; i < 1000; ++i)
    bus.publish(load, i, i % 2 == 0 ? 0.2 : 0.8);  // every sample is a breakpoint
  bus.finish();

  EXPECT_LE(recorder.breakpoints().size(), 1u);  // pruned down to the newest
  std::size_t rows = 0;
  for (std::size_t pos = out.str().find('\n'); pos != std::string::npos;
       pos = out.str().find('\n', pos + 1))
    ++rows;
  EXPECT_EQ(rows, 1000u);  // file still has every row
  EXPECT_NE(out.str().find("999.000000,80\n"), std::string::npos);
}

TEST(RingBufferSink, KeepsBoundedTailPerChannel) {
  TelemetryBus bus;
  RingBufferSink sink(8);
  bus.attach(&sink);
  const ChannelId ch = bus.channel("x", "u");
  bus.begin_phase("", 100.0, 0.0, 0.0);
  for (int i = 0; i < 100; ++i) bus.publish(ch, i, static_cast<double>(i));
  bus.finish();
  EXPECT_EQ(sink.tail(ch).size(), 8u);
  EXPECT_DOUBLE_EQ(sink.tail(ch).back().value, 99.0);
  EXPECT_DOUBLE_EQ(sink.tail(ch).front().value, 92.0);
}

TEST(TelemetryBus, LateAttachReplaysChannelsAndPhase) {
  TelemetryBus bus;
  const ChannelId ch = bus.channel("x", "u");
  bus.begin_phase("late", 10.0, 0.0, 0.0);
  SummarySink sink;
  bus.attach(&sink);  // after registration and phase begin
  bus.publish(ch, 0.0, 3.0);
  bus.finish();
  ASSERT_EQ(sink.rows().size(), 1u);
  EXPECT_EQ(sink.rows()[0].name, "x");
  EXPECT_EQ(sink.rows()[0].phase, "late");
}

TEST(TelemetryBus, HashedChannelLookupPreservesIdsAndOrder) {
  TelemetryBus bus;
  const ChannelId b = bus.channel("beta", "W");
  const ChannelId a = bus.channel("alpha", "W");
  const ChannelId a_other_unit = bus.channel("alpha", "degC");
  // Re-registration is idempotent and returns the original id regardless of
  // how many channels were added in between.
  EXPECT_EQ(bus.channel("beta", "W"), b);
  EXPECT_EQ(bus.channel("alpha", "W"), a);
  EXPECT_EQ(bus.channel("alpha", "degC"), a_other_unit);
  EXPECT_EQ(bus.channel_count(), 3u);
  // Ids are registration order — the summary row order contract.
  EXPECT_EQ(b, 0u);
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(a_other_unit, 2u);
  EXPECT_EQ(bus.info(a).unit, "W");
}

/// Deterministic value stream with enough structure to exercise the P²
/// marker moves and the trim window edges.
double probe_value(std::size_t channel, std::size_t i) {
  const double t = static_cast<double>(i) * 0.05;
  return 100.0 * static_cast<double>(channel + 1) + 25.0 * std::sin(t * 1.3) +
         0.01 * static_cast<double>(i % 97);
}

TEST(TelemetryBatch, PublishBatchBitIdenticalToPerSamplePublish) {
  // Two buses consume the SAME per-channel sample sequences — one sample
  // at a time vs. ragged batches — across multiple phases with real trim
  // deltas. Every summary statistic (including the order-sensitive P²
  // quantiles) must agree TO THE BIT: batching is transport, not
  // semantics.
  TelemetryBus single_bus, batch_bus;
  SummarySink single_sink, batch_sink;
  single_bus.attach(&single_sink);
  batch_bus.attach(&batch_sink);

  std::vector<ChannelId> single_ch, batch_ch;
  for (int c = 0; c < 3; ++c) {
    const std::string name = "ch" + std::to_string(c);
    const TrimMode trim = c == 2 ? TrimMode::kNone : TrimMode::kPhase;
    single_ch.push_back(single_bus.channel(name, "u", trim));
    batch_ch.push_back(batch_bus.channel(name, "u", trim));
  }

  const std::size_t batch_sizes[] = {1, 7, 64, 501, 3};
  for (int phase = 0; phase < 3; ++phase) {
    const std::string phase_name = "p" + std::to_string(phase);
    single_bus.begin_phase(phase_name, 60.0, 2.5, 1.0);
    batch_bus.begin_phase(phase_name, 60.0, 2.5, 1.0);
    const std::size_t samples = 1200 - static_cast<std::size_t>(phase) * 150;
    for (std::size_t c = 0; c < 3; ++c) {
      for (std::size_t i = 0; i < samples; ++i)
        single_bus.publish(single_ch[c], i * 0.05, probe_value(c, i));
      std::size_t at = 0;
      std::size_t pick = 0;
      while (at < samples) {
        const std::size_t n = std::min(batch_sizes[pick++ % 5], samples - at);
        std::vector<Sample> chunk;
        for (std::size_t i = 0; i < n; ++i)
          chunk.push_back(Sample{(at + i) * 0.05, probe_value(c, at + i)});
        batch_bus.publish_batch(batch_ch[c], chunk);
        at += n;
      }
    }
    single_bus.end_phase();
    batch_bus.end_phase();
  }
  single_bus.finish();
  batch_bus.finish();

  const auto& expected = single_sink.rows();
  const auto& actual = batch_sink.rows();
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    SCOPED_TRACE(expected[i].name + " / " + expected[i].phase);
    EXPECT_EQ(actual[i].name, expected[i].name);
    EXPECT_EQ(actual[i].phase, expected[i].phase);
    EXPECT_EQ(actual[i].samples, expected[i].samples);
    // EXPECT_EQ, not NEAR: bit-identical is the contract.
    EXPECT_EQ(actual[i].mean, expected[i].mean);
    EXPECT_EQ(actual[i].stddev, expected[i].stddev);
    EXPECT_EQ(actual[i].min, expected[i].min);
    EXPECT_EQ(actual[i].max, expected[i].max);
    EXPECT_EQ(actual[i].p50, expected[i].p50);
    EXPECT_EQ(actual[i].p95, expected[i].p95);
    EXPECT_EQ(actual[i].p99, expected[i].p99);
  }
}

TEST(TelemetryBatch, AggregatorBatchMatchesPerSampleMidStream) {
  // add_batch must reach the same state as per-sample add even when
  // summarize() peeks mid-stream (pending holdback in play).
  StreamingAggregator per_sample(1.0, 0.5);
  StreamingAggregator batched(1.0, 0.5);
  std::vector<Sample> chunk;
  for (std::size_t i = 0; i < 400; ++i) {
    const Sample s{i * 0.05, probe_value(0, i)};
    per_sample.add(s.time_s, s.value);
    chunk.push_back(s);
    if (chunk.size() == 37 || i + 1 == 400) {
      batched.add_batch(chunk.data(), chunk.size());
      chunk.clear();
      const StreamingSummary a = per_sample.summarize();
      const StreamingSummary b = batched.summarize();
      EXPECT_EQ(a.samples, b.samples);
      EXPECT_EQ(a.mean, b.mean);
      EXPECT_EQ(a.p99, b.p99);
      EXPECT_EQ(per_sample.total_samples(), batched.total_samples());
    }
  }
  EXPECT_EQ(per_sample.pending(), batched.pending());
}

TEST(TelemetryBatch, NonSummarizedChannelsProduceNoRowsEitherWay) {
  TelemetryBus bus;
  SummarySink sink;
  bus.attach(&sink);
  const ChannelId silent = bus.channel("trace-only", "u", TrimMode::kNone,
                                       /*summarize=*/false);
  const ChannelId loud = bus.channel("kept", "u");
  bus.begin_phase("p", 10.0, 0.0, 0.0);
  std::vector<Sample> chunk{{0.0, 1.0}, {1.0, 2.0}};
  bus.publish_batch(silent, chunk);
  bus.publish_batch(loud, chunk);
  for (int i = 0; i < 4; ++i) bus.publish(silent, 2.0 + i, 3.0);
  bus.finish();
  ASSERT_EQ(sink.rows().size(), 1u);
  EXPECT_EQ(sink.rows()[0].name, "kept");
}

}  // namespace
}  // namespace fs2::telemetry
