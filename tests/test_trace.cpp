// Tests for the trace subsystem: the thread-local span ring (record/drain
// ordering, overflow accounting, the disabled fast path), the counter/gauge
// registry, clock-offset rebasing at trace merge (the ±50 ms two-node skew
// case the PR's acceptance demands), and the Chrome trace_event exporter.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/messages.hpp"
#include "cluster/wire.hpp"
#include "trace/registry.hpp"
#include "trace/trace_event.hpp"
#include "trace/tracer.hpp"
#include "util/error.hpp"

namespace fs2::trace {
namespace {

/// Tests share one process-wide tracer; each starts from a clean slate.
struct TracerTest : ::testing::Test {
  void SetUp() override { Tracer::reset(); }
  void TearDown() override { Tracer::reset(); }
};

TEST_F(TracerTest, RecordsAndDrainsInOrder) {
  Tracer::set_enabled(true);
  Tracer::record("a", 1.0, 2.0);
  Tracer::record("b", 2.0, 3.0);
  Tracer::record("c", 3.0, 4.0);
  std::vector<SpanEvent> out;
  EXPECT_EQ(Tracer::drain(out), 3u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_STREQ(out[0].name, "a");
  EXPECT_STREQ(out[1].name, "b");
  EXPECT_STREQ(out[2].name, "c");
  EXPECT_DOUBLE_EQ(out[1].begin_s, 2.0);
  EXPECT_DOUBLE_EQ(out[1].end_s, 3.0);
  // Drained means gone: a second drain finds nothing.
  out.clear();
  EXPECT_EQ(Tracer::drain(out), 0u);
  EXPECT_EQ(Tracer::dropped(), 0u);
}

TEST_F(TracerTest, ScopedSpanRecordsOnlyWhenEnabled) {
  {
    TRACE_SPAN("disabled.scope");
  }
  std::vector<SpanEvent> out;
  EXPECT_EQ(Tracer::drain(out), 0u);

  Tracer::set_enabled(true);
  {
    TRACE_SPAN("enabled.scope");
  }
  EXPECT_EQ(Tracer::drain(out), 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_STREQ(out[0].name, "enabled.scope");
  EXPECT_GE(out[0].end_s, out[0].begin_s);
}

TEST_F(TracerTest, FullRingDropsNewAndCounts) {
  Tracer::set_enabled(true);
  const std::size_t overflow = 100;
  for (std::size_t i = 0; i < Tracer::kRingCapacity + overflow; ++i)
    Tracer::record("flood", 1.0, 2.0);
  EXPECT_EQ(Tracer::dropped(), overflow);
  std::vector<SpanEvent> out;
  EXPECT_EQ(Tracer::drain(out), Tracer::kRingCapacity);
  // Capacity freed: recording works again, and reset clears the count.
  Tracer::record("after", 1.0, 2.0);
  out.clear();
  EXPECT_EQ(Tracer::drain(out), 1u);
  Tracer::reset();
  EXPECT_EQ(Tracer::dropped(), 0u);
}

TEST_F(TracerTest, DrainCollectsSpansFromExitedThreads) {
  Tracer::set_enabled(true);
  std::thread worker([] { Tracer::record("from.worker", 5.0, 6.0); });
  worker.join();
  std::vector<SpanEvent> out;
  Tracer::drain(out);
  const bool found = std::any_of(out.begin(), out.end(), [](const SpanEvent& e) {
    return std::string(e.name) == "from.worker";
  });
  EXPECT_TRUE(found);
}

TEST(Registry, CounterAndGaugeCreateOrGet) {
  Registry& reg = Registry::instance();
  reg.reset();
  Counter& c = reg.counter("test.reg.counter");
  c.add();
  c.add(4);
  EXPECT_EQ(&reg.counter("test.reg.counter"), &c);  // same object on re-get
  Gauge& g = reg.gauge("test.reg.gauge");
  g.set(2.5);
  EXPECT_THROW(reg.gauge("test.reg.counter"), Error);   // kind mismatch
  EXPECT_THROW(reg.counter("test.reg.gauge"), Error);

  bool saw_counter = false, saw_gauge = false;
  for (const MetricSnapshot& m : reg.snapshot()) {
    if (m.name == "test.reg.counter") {
      saw_counter = true;
      EXPECT_TRUE(m.is_counter);
      EXPECT_DOUBLE_EQ(m.value, 5.0);
    }
    if (m.name == "test.reg.gauge") {
      saw_gauge = true;
      EXPECT_FALSE(m.is_counter);
      EXPECT_DOUBLE_EQ(m.value, 2.5);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);

  // reset() zeroes without unregistering (hot paths hold references).
  reg.reset();
  for (const MetricSnapshot& m : reg.snapshot())
    if (m.name == "test.reg.counter") EXPECT_DOUBLE_EQ(m.value, 0.0);
  c.add();  // the cached reference must still be live
}

// ---- clock-offset rebasing at trace merge ----------------------------------

/// The acceptance case: two nodes skewed ±50 ms against the coordinator.
/// Node "fast" runs 50 ms ahead (offset +0.05), node "slow" 50 ms behind.
/// An event both nodes observed "simultaneously" in coordinator time must
/// land at the same rebased timestamp; local timestamps alone would order
/// them 100 ms apart.
TEST(TraceCollector, RebasesTwoNodeSkewOntoOneTimeline) {
  TraceCollector collector;
  collector.add_node("coordinator", 0.0);
  collector.add_node("fast", +0.05);
  collector.add_node("slow", -0.05);

  // Coordinator time 10.0s: fast's clock reads 10.05, slow's reads 9.95.
  collector.add_span("fast", {"barrier", 10.05, 10.07});
  collector.add_span("slow", {"barrier", 9.95, 9.97});
  collector.add_span("coordinator", {"release", 10.06, 10.08});
  // Coordinator time 9.90s on slow only — must sort FIRST even though its
  // local stamp (9.85) is not the smallest local value involved... and a
  // fast-node span at coordinator time 10.10 must sort last.
  collector.add_span("slow", {"early", 9.85, 9.86});
  collector.add_span("fast", {"late", 10.15, 10.16});

  const std::vector<Span> merged = collector.merged_timeline();
  ASSERT_EQ(merged.size(), 5u);
  EXPECT_EQ(merged.front().name, "early");
  EXPECT_DOUBLE_EQ(merged.front().begin_s, 9.90);
  EXPECT_EQ(merged.back().name, "late");
  EXPECT_DOUBLE_EQ(merged.back().begin_s, 10.10);
  // The two skewed "barrier" spans rebase to the identical instant.
  EXPECT_DOUBLE_EQ(merged[1].begin_s, 10.0);
  EXPECT_DOUBLE_EQ(merged[2].begin_s, 10.0);
  EXPECT_EQ(merged[1].name, "barrier");
  EXPECT_EQ(merged[2].name, "barrier");
  // And the coordinator's own release sits between barrier and "late".
  EXPECT_EQ(merged[3].name, "release");
  EXPECT_DOUBLE_EQ(merged[3].begin_s, 10.06);

  // Per-node view rebases too, preserving recording order.
  const std::vector<Span> slow = collector.spans_for_node("slow");
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_DOUBLE_EQ(slow[0].begin_s, 10.0);
  EXPECT_DOUBLE_EQ(slow[1].begin_s, 9.90);

  EXPECT_THROW(collector.add_span("unknown-node", {"x", 0.0, 1.0}), Error);
}

TEST(TraceCollector, WriteJsonRoundTripsThroughTraceEventFormat) {
  TraceCollector collector;
  collector.add_node("coordinator", 0.0);
  collector.add_node("agent", -0.05);  // 50 ms behind the coordinator
  collector.add_span("coordinator", {"phase \"one\"", 1.0, 1.5});
  collector.add_span("agent", {"work\n", 0.95, 1.45});  // rebased: 1.0..1.5
  collector.add_counters("agent", {{"agent.frames", 42.0, true}});

  std::ostringstream out;
  collector.write_json(out);
  const std::string json = out.str();

  // Structure: one traceEvents array, process_name metadata per node.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"process_name\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"coordinator\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"agent\""), std::string::npos) << json;
  // Special characters in span names are escaped, never raw.
  EXPECT_NE(json.find("phase \\\"one\\\""), std::string::npos) << json;
  EXPECT_NE(json.find("work\\n"), std::string::npos) << json;
  EXPECT_EQ(json.find("work\n\""), std::string::npos) << json;
  // Both spans rebase to the same begin; exported ts is shifted so the
  // earliest span sits at 0 µs and both carry dur 500000 µs.
  EXPECT_NE(json.find("\"ts\":0,"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":500000"), std::string::npos) << json;
  // Counter snapshot becomes a "C" event.
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos) << json;
  EXPECT_NE(json.find("agent.frames"), std::string::npos) << json;
  // No unescaped control characters and balanced braces/brackets: the
  // minimal well-formedness a JSON consumer needs.
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (in_string) {
      EXPECT_GE(static_cast<unsigned char>(ch), 0x20) << "raw control char in string";
      if (ch == '\\') ++i;
      else if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

// ---- wire round trips for the new message types -----------------------------

TEST(TraceMessages, TraceSpansRoundTrip) {
  cluster::TraceSpansMsg msg;
  msg.spans = {{"phase:ramp", 1.25, 2.5}, {"agent.barrier_wait", 2.5, 2.625}};
  msg.dropped = 7;
  const cluster::Frame frame = msg.encode();
  EXPECT_EQ(frame.type, cluster::MessageType::kTraceSpans);
  cluster::WireReader reader(frame.payload);
  const cluster::TraceSpansMsg back = cluster::TraceSpansMsg::decode(reader);
  ASSERT_EQ(back.spans.size(), 2u);
  EXPECT_EQ(back.spans[0].name, "phase:ramp");
  EXPECT_DOUBLE_EQ(back.spans[0].begin_s, 1.25);
  EXPECT_DOUBLE_EQ(back.spans[1].end_s, 2.625);
  EXPECT_EQ(back.dropped, 7u);
}

TEST(TraceMessages, CounterSnapshotRoundTrip) {
  cluster::CounterSnapshotMsg msg;
  msg.counters = {{"reactor.poll_iterations", 1234.0, true},
                  {"cluster.bus.queued_samples", 17.0, false}};
  const cluster::Frame frame = msg.encode();
  cluster::WireReader reader(frame.payload);
  const cluster::CounterSnapshotMsg back = cluster::CounterSnapshotMsg::decode(reader);
  ASSERT_EQ(back.counters.size(), 2u);
  EXPECT_EQ(back.counters[0].name, "reactor.poll_iterations");
  EXPECT_TRUE(back.counters[0].is_counter);
  EXPECT_DOUBLE_EQ(back.counters[1].value, 17.0);
  EXPECT_FALSE(back.counters[1].is_counter);
}

TEST(TraceMessages, StatusRoundTrip) {
  cluster::StatusReplyMsg msg;
  msg.accepting = 0;
  msg.nodes_expected = 4;
  msg.phase_count = 3;
  msg.queued_samples = 99;
  msg.budget_w = 1000.0;
  msg.fleet_healthy = 0;
  msg.nodes = {{"n0", "zen2", 1, 3, 2, 0.002, 0.0001, 251.0, 250.0, 0.61, 1, 4.25}};
  msg.spreads = {{"ramp", "n0", "n1", 1.0, 1.002, 4}};
  msg.counters = {{"coordinator.frames", 512.0, true}};
  msg.alerts = {{"flatline", "n0", "no metric update for 4.2 s", 17.5}};
  const cluster::Frame frame = msg.encode();
  EXPECT_EQ(frame.type, cluster::MessageType::kStatusReply);
  cluster::WireReader reader(frame.payload);
  const cluster::StatusReplyMsg back = cluster::StatusReplyMsg::decode(reader);
  EXPECT_EQ(back.nodes_expected, 4u);
  EXPECT_EQ(back.queued_samples, 99u);
  ASSERT_EQ(back.nodes.size(), 1u);
  EXPECT_EQ(back.nodes[0].name, "n0");
  EXPECT_EQ(back.nodes[0].phases_begun, 3u);
  EXPECT_EQ(back.nodes[0].phases_ended, 2u);
  EXPECT_DOUBLE_EQ(back.nodes[0].achieved_w, 251.0);
  ASSERT_EQ(back.spreads.size(), 1u);
  EXPECT_EQ(back.spreads[0].phase, "ramp");
  EXPECT_EQ(back.spreads[0].max_node, "n1");
  EXPECT_EQ(back.spreads[0].nodes, 4u);
  ASSERT_EQ(back.counters.size(), 1u);
  EXPECT_EQ(back.counters[0].name, "coordinator.frames");
  EXPECT_EQ(back.fleet_healthy, 0);
  EXPECT_EQ(back.nodes[0].lost, 1);
  EXPECT_DOUBLE_EQ(back.nodes[0].last_metrics_age_s, 4.25);
  ASSERT_EQ(back.alerts.size(), 1u);
  EXPECT_EQ(back.alerts[0].kind, "flatline");
  EXPECT_EQ(back.alerts[0].node, "n0");
  EXPECT_EQ(back.alerts[0].detail, "no metric update for 4.2 s");
  EXPECT_DOUBLE_EQ(back.alerts[0].t_s, 17.5);

  const cluster::Frame request_frame = cluster::StatusRequestMsg{}.encode();
  cluster::WireReader request_reader(request_frame.payload);
  EXPECT_EQ(cluster::StatusRequestMsg::decode(request_reader).version,
            cluster::kProtocolVersion);
}

}  // namespace
}  // namespace fs2::trace
