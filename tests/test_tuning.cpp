// Tests for the NSGA-II optimizer: dominance and sorting verified against
// brute force (property-tested over random point sets), crowding-distance
// invariants, convergence on analytic trade-off problems, determinism, and
// the FIRESTARTER genome <-> instruction-groups mapping.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "tuning/groups_problem.hpp"
#include "tuning/history.hpp"
#include "tuning/nsga2.hpp"
#include "tuning/pareto.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fs2::tuning {
namespace {

// ---- dominance -------------------------------------------------------------

TEST(Dominance, Basics) {
  EXPECT_TRUE(dominates({2, 2}, {1, 1}));
  EXPECT_TRUE(dominates({2, 1}, {1, 1}));
  EXPECT_FALSE(dominates({1, 1}, {1, 1}));  // equal: no strict improvement
  EXPECT_FALSE(dominates({2, 0}, {1, 1}));  // trade-off: incomparable
  EXPECT_FALSE(dominates({1, 1}, {2, 2}));
}

// ---- non-dominated sort vs brute force ------------------------------------------

int brute_force_rank(const std::vector<std::vector<double>>& points, std::size_t index) {
  // Rank = how many "peeling" rounds before the point becomes non-dominated.
  std::vector<bool> removed(points.size(), false);
  for (int round = 0;; ++round) {
    std::vector<std::size_t> front;
    for (std::size_t p = 0; p < points.size(); ++p) {
      if (removed[p]) continue;
      bool dominated = false;
      for (std::size_t q = 0; q < points.size() && !dominated; ++q)
        if (q != p && !removed[q] && dominates(points[q], points[p])) dominated = true;
      if (!dominated) front.push_back(p);
    }
    for (std::size_t p : front) {
      if (p == index) return round;
      removed[p] = true;
    }
  }
}

class SortProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(SortProperty, MatchesBruteForcePeeling) {
  Xoshiro256 rng(GetParam());
  std::vector<Individual> population(30);
  std::vector<std::vector<double>> points;
  for (auto& ind : population) {
    ind.objectives = {rng.uniform(0, 10), rng.uniform(0, 10)};
    points.push_back(ind.objectives);
  }
  const auto fronts = fast_non_dominated_sort(population);

  // Ranks match the brute-force peeling definition.
  for (std::size_t p = 0; p < population.size(); ++p)
    EXPECT_EQ(population[p].rank, brute_force_rank(points, p)) << "point " << p;

  // Fronts partition the population.
  std::size_t total = 0;
  for (const auto& front : fronts) total += front.size();
  EXPECT_EQ(total, population.size());

  // No member of a front dominates another member of the same front.
  for (const auto& front : fronts)
    for (std::size_t a : front)
      for (std::size_t b : front)
        EXPECT_FALSE(dominates(population[a].objectives, population[b].objectives));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SortProperty, testing::Values(1, 2, 3, 5, 8, 13, 21, 42));

TEST(Crowding, BoundariesAreInfinite) {
  std::vector<Individual> pop(5);
  for (int i = 0; i < 5; ++i) pop[static_cast<std::size_t>(i)].objectives = {double(i), double(4 - i)};
  const std::vector<std::size_t> front = {0, 1, 2, 3, 4};
  assign_crowding_distance(pop, front);
  EXPECT_TRUE(std::isinf(pop[0].crowding));
  EXPECT_TRUE(std::isinf(pop[4].crowding));
  for (int i = 1; i < 4; ++i) {
    EXPECT_GT(pop[static_cast<std::size_t>(i)].crowding, 0.0);
    EXPECT_FALSE(std::isinf(pop[static_cast<std::size_t>(i)].crowding));
  }
}

TEST(Crowding, DegenerateObjectiveHandled) {
  std::vector<Individual> pop(3);
  for (auto& ind : pop) ind.objectives = {1.0, 1.0};  // all identical
  assign_crowding_distance(pop, {0, 1, 2});
  // No NaNs; boundaries still infinite.
  EXPECT_TRUE(std::isinf(pop[0].crowding));
}

// ---- pareto utilities ------------------------------------------------------------------

TEST(Pareto, FrontExtraction) {
  const std::vector<std::vector<double>> points = {
      {1, 5}, {3, 3}, {5, 1}, {2, 2}, {0, 0}, {3, 3}};
  const auto front = pareto_front(points);
  // {1,5}, {3,3} (twice) and {5,1} are non-dominated; {2,2} and {0,0} are not.
  EXPECT_EQ(front.size(), 4u);
  EXPECT_TRUE(std::find(front.begin(), front.end(), 3u) == front.end());
  EXPECT_TRUE(std::find(front.begin(), front.end(), 4u) == front.end());
}

TEST(Pareto, Hypervolume2d) {
  // Two disjoint rectangles from (0,0): 2x1 + 1x1 = 3... computed by sweep:
  // points (2,1) and (1,2): volume = 2*1 + 1*(2-1) = 3.
  EXPECT_DOUBLE_EQ(hypervolume_2d({{2, 1}, {1, 2}}, {0, 0}), 3.0);
  // Single point.
  EXPECT_DOUBLE_EQ(hypervolume_2d({{2, 3}}, {0, 0}), 6.0);
  // Dominated point adds nothing.
  EXPECT_DOUBLE_EQ(hypervolume_2d({{2, 3}, {1, 1}}, {0, 0}), 6.0);
  // Empty front.
  EXPECT_DOUBLE_EQ(hypervolume_2d({}, {0, 0}), 0.0);
}

TEST(Pareto, HypervolumeValidation) {
  EXPECT_THROW(hypervolume_2d({{1, 1}}, {0, 0, 0}), Error);
  EXPECT_THROW(hypervolume_2d({{-1, 1}}, {0, 0}), Error);
}

// ---- the optimizer on analytic problems ------------------------------------------------------

/// Bi-objective trade-off: genome of one gene g in [0, 100]; objectives
/// (g, 100-g). Every genome is Pareto-optimal: the final front should
/// spread across the whole range (crowding keeps diversity).
class TradeoffProblem : public Problem {
 public:
  std::size_t genome_length() const override { return 1; }
  std::uint32_t gene_max(std::size_t) const override { return 100; }
  std::size_t num_objectives() const override { return 2; }
  std::string objective_name(std::size_t i) const override { return i == 0 ? "g" : "100-g"; }
  std::vector<double> evaluate(const Genome& genome) override {
    ++evaluations;
    return {double(genome[0]), 100.0 - double(genome[0])};
  }
  int evaluations = 0;
};

/// Single peak: maximize both objectives simultaneously at gene = 60.
/// Tests convergence toward a known optimum.
class PeakProblem : public Problem {
 public:
  std::size_t genome_length() const override { return 4; }
  std::uint32_t gene_max(std::size_t) const override { return 100; }
  std::size_t num_objectives() const override { return 2; }
  std::string objective_name(std::size_t i) const override { return i == 0 ? "f1" : "f2"; }
  std::vector<double> evaluate(const Genome& genome) override {
    double penalty = 0.0;
    for (std::uint32_t g : genome) penalty += std::abs(double(g) - 60.0);
    return {1000.0 - penalty, 1000.0 - penalty / 2.0};
  }
};

TEST(Nsga2Run, EvaluationCountAndHistory) {
  TradeoffProblem problem;
  Nsga2Config config;
  config.individuals = 12;
  config.generations = 5;
  History history;
  Nsga2 optimizer(config);
  const auto population = optimizer.run(problem, &history);
  EXPECT_EQ(population.size(), 12u);
  // N initial + N per generation.
  EXPECT_EQ(problem.evaluations, 12 * 6);
  EXPECT_EQ(history.size(), 12u * 6);
  EXPECT_EQ(history.evaluations().front().generation, 0u);
  EXPECT_EQ(history.evaluations().back().generation, 5u);
}

TEST(Nsga2Run, TradeoffFrontStaysDiverse) {
  TradeoffProblem problem;
  Nsga2Config config;
  config.individuals = 20;
  config.generations = 10;
  Nsga2 optimizer(config);
  const auto population = optimizer.run(problem);
  // All individuals are rank 0 (every point is Pareto-optimal) and the
  // crowding mechanism must retain spread, not collapse to one end.
  double lo = 1e9, hi = -1e9;
  for (const auto& ind : population) {
    EXPECT_EQ(ind.rank, 0);
    lo = std::min(lo, ind.objectives[0]);
    hi = std::max(hi, ind.objectives[0]);
  }
  EXPECT_GT(hi - lo, 30.0);
}

TEST(Nsga2Run, ConvergesToPeak) {
  PeakProblem problem;
  Nsga2Config config;
  config.individuals = 24;
  config.generations = 30;
  Nsga2 optimizer(config);
  const auto population = optimizer.run(problem);
  const auto& best = Nsga2::best_by_objective(population, 0);
  // Random genomes average penalty ~4*25=100; the optimizer should get
  // close to the peak at 1000.
  EXPECT_GT(best.objectives[0], 960.0);
}

TEST(Nsga2Run, DeterministicForSeed) {
  auto run_once = [](std::uint64_t seed) {
    PeakProblem problem;
    Nsga2Config config;
    config.individuals = 10;
    config.generations = 5;
    config.seed = seed;
    Nsga2 optimizer(config);
    const auto pop = optimizer.run(problem);
    std::vector<double> firsts;
    for (const auto& ind : pop) firsts.push_back(ind.objectives[0]);
    return firsts;
  };
  EXPECT_EQ(run_once(99), run_once(99));
  EXPECT_NE(run_once(99), run_once(100));
}

TEST(Nsga2Run, HypervolumeImprovesOverGenerations) {
  // Fig. 11's story: later evaluations close in on the Pareto front.
  PeakProblem problem;
  Nsga2Config config;
  config.individuals = 20;
  config.generations = 15;
  History history;
  Nsga2 optimizer(config);
  optimizer.run(problem, &history);

  auto front_hv = [&](std::size_t gen_limit) {
    std::vector<std::vector<double>> points;
    for (const auto& e : history.evaluations())
      if (e.generation <= gen_limit) points.push_back(e.objectives);
    std::vector<std::vector<double>> front;
    for (std::size_t i : pareto_front(points)) front.push_back(points[i]);
    return hypervolume_2d(front, {0.0, 0.0});
  };
  EXPECT_GE(front_hv(15), front_hv(0));
}

TEST(Nsga2Run, RejectsDegenerateConfig) {
  PeakProblem problem;
  Nsga2Config config;
  config.individuals = 1;
  Nsga2 optimizer(config);
  EXPECT_THROW(optimizer.run(problem), Error);
}

TEST(Nsga2Run, BestByObjectiveValidation) {
  EXPECT_THROW(Nsga2::best_by_objective({}, 0), Error);
}

TEST(History, CsvRoundTrip) {
  History history;
  history.record(0, {1, 2, 3}, {10.5, 20.25});
  history.record(1, {4, 5, 6}, {11.0, 19.0});
  std::ostringstream out;
  history.write_csv(out, {"power", "ipc"});
  const std::string text = out.str();
  EXPECT_NE(text.find("order,generation,power,ipc,genome"), std::string::npos);
  EXPECT_NE(text.find("0,0,10.5000,20.2500,1 2 3"), std::string::npos);
  EXPECT_NE(text.find("1,1,11.0000,19.0000,4 5 6"), std::string::npos);
}

// ---- groups problem ----------------------------------------------------------------------------

class RecordingBackend : public EvaluationBackend {
 public:
  std::vector<std::string> objective_names() const override { return {"power", "ipc"}; }
  std::vector<double> evaluate(const payload::InstructionGroups& groups) override {
    last = groups.to_string();
    return {double(groups.total()), 1.0};
  }
  std::string last;
};

TEST(GroupsProblem, GenomeLayoutMatchesAccessKinds) {
  RecordingBackend backend;
  GroupsProblem problem(backend);
  EXPECT_EQ(problem.genome_length(), payload::all_access_kinds().size());
  EXPECT_EQ(problem.num_objectives(), 2u);
  // REG (gene 0) allows the largest counts; RAM genes are bounded tighter.
  EXPECT_EQ(problem.gene_max(0), 100u);
  EXPECT_EQ(problem.gene_max(problem.genome_length() - 1), 12u);
}

TEST(GroupsProblem, RoundTripGroupsGenome) {
  const auto groups = payload::InstructionGroups::parse("REG:4,L1_L:2,L2_L:1");
  const Genome genome = GroupsProblem::from_groups(groups);
  const auto back = GroupsProblem::to_groups(genome);
  EXPECT_EQ(back.count_of(*payload::parse_access_kind("REG")), 4u);
  EXPECT_EQ(back.count_of(*payload::parse_access_kind("L1_L")), 2u);
  EXPECT_EQ(back.count_of(*payload::parse_access_kind("L2_L")), 1u);
  EXPECT_EQ(back.total(), 7u);
}

TEST(GroupsProblem, AllZeroGenomeRepairsToReg) {
  RecordingBackend backend;
  GroupsProblem problem(backend);
  Genome zeros(problem.genome_length(), 0);
  problem.repair(zeros);
  EXPECT_EQ(zeros[0], 1u);
  const auto groups = GroupsProblem::to_groups(Genome(problem.genome_length(), 0));
  EXPECT_EQ(groups.to_string(), "REG:1");
}

TEST(GroupsProblem, EvaluateDelegatesToBackend) {
  RecordingBackend backend;
  GroupsProblem problem(backend);
  Genome genome(problem.genome_length(), 0);
  genome[0] = 3;
  const auto objectives = problem.evaluate(genome);
  EXPECT_EQ(backend.last, "REG:3");
  EXPECT_DOUBLE_EQ(objectives[0], 3.0);
}

TEST(GroupsProblem, GenomeLengthMismatchThrows) {
  EXPECT_THROW(GroupsProblem::to_groups(Genome{1, 2}), Error);
}

}  // namespace
}  // namespace fs2::tuning
