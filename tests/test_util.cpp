// Tests for src/util: stats, RNG determinism, CSV escaping, string parsing.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace fs2 {
namespace {

// ---- stats ----------------------------------------------------------------

TEST(Stats, MeanOfConstantSample) {
  const std::vector<double> v(100, 3.25);
  EXPECT_DOUBLE_EQ(stats::mean(v), 3.25);
}

TEST(Stats, MeanAndStddevKnownSample) {
  const std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(stats::mean(v), 5.0);
  EXPECT_DOUBLE_EQ(stats::stddev(v), 2.0);
}

TEST(Stats, EmptySampleThrows) {
  const std::vector<double> empty;
  EXPECT_THROW(stats::mean(empty), Error);
  EXPECT_THROW(stats::min(empty), Error);
  EXPECT_THROW(stats::percentile(empty, 50), Error);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(stats::percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(stats::percentile(v, 100), 4.0);
  EXPECT_DOUBLE_EQ(stats::median(v), 2.5);
}

TEST(Stats, PercentileOutOfRangeThrows) {
  const std::vector<double> v = {1, 2};
  EXPECT_THROW(stats::percentile(v, -1), Error);
  EXPECT_THROW(stats::percentile(v, 101), Error);
}

TEST(Stats, KahanSumStaysAccurate) {
  // 10^6 values of 0.1 — naive float-order-dependent summation drifts.
  const std::vector<double> v(1000000, 0.1);
  EXPECT_NEAR(stats::sum(v), 100000.0, 1e-6);
}

TEST(Stats, CdfCoversAllSamplesMonotonically) {
  const std::vector<double> v = {10.0, 20.0, 20.0, 30.0};
  const auto cdf = stats::cumulative_distribution(v, 10.0);
  ASSERT_FALSE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.back().proportion, 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i)
    EXPECT_GE(cdf[i].proportion, cdf[i - 1].proportion);
}

TEST(Stats, CdfBinWidthValidation) {
  const std::vector<double> v = {1.0};
  EXPECT_THROW(stats::cumulative_distribution(v, 0.0), Error);
}

TEST(Stats, AccumulatorMatchesBatchStats) {
  const std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  stats::Accumulator acc;
  for (double x : v) acc.add(x);
  EXPECT_EQ(acc.count(), v.size());
  EXPECT_DOUBLE_EQ(acc.mean(), stats::mean(v));
  EXPECT_NEAR(acc.stddev(), stats::stddev(v), 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(Stats, AccumulatorEmptyThrows) {
  stats::Accumulator acc;
  EXPECT_THROW(acc.mean(), Error);
}

// ---- rng -------------------------------------------------------------------

TEST(Rng, DeterministicAcrossInstances) {
  Xoshiro256 a(1234), b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BelowRespectsBound) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, RangeInclusive) {
  Xoshiro256 rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalRoughlyStandard) {
  Xoshiro256 rng(99);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

// ---- strings ------------------------------------------------------------------

TEST(Strings, SplitKeepsEmptyFields) {
  const auto fields = strings::split("a,,b", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "");
}

TEST(Strings, TrimWhitespace) {
  EXPECT_EQ(strings::trim("  x y \t"), "x y");
  EXPECT_EQ(strings::trim("   "), "");
}

TEST(Strings, CaseConversion) {
  EXPECT_EQ(strings::to_lower("L1_LS"), "l1_ls");
  EXPECT_EQ(strings::to_upper("ram_p"), "RAM_P");
}

TEST(Strings, ParseU64Valid) {
  EXPECT_EQ(strings::parse_u64("42", "test"), 42u);
  EXPECT_EQ(strings::parse_u64(" 0 ", "test"), 0u);
}

TEST(Strings, ParseU64Rejects) {
  EXPECT_THROW(strings::parse_u64("", "ctx"), ConfigError);
  EXPECT_THROW(strings::parse_u64("-1", "ctx"), ConfigError);
  EXPECT_THROW(strings::parse_u64("12x", "ctx"), ConfigError);
  EXPECT_THROW(strings::parse_u64("99999999999999999999999", "ctx"), ConfigError);
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(strings::parse_double("0.35", "m"), 0.35);
  EXPECT_THROW(strings::parse_double("abc", "m"), ConfigError);
  EXPECT_THROW(strings::parse_double("1.5x", "m"), ConfigError);
}

TEST(Strings, Format) {
  EXPECT_EQ(strings::format("%d W at %.1f MHz", 438, 1500.0), "438 W at 1500.0 MHz");
}

// ---- csv ---------------------------------------------------------------------------

TEST(Csv, EscapesSeparatorAndQuotes) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row(std::vector<std::string>{"plain", "with,comma", "with\"quote"});
  EXPECT_EQ(out.str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST(Csv, NumericRowPrecision) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row(std::vector<double>{1.23456, 2.0}, 2);
  EXPECT_EQ(out.str(), "1.23,2.00\n");
}

// ---- table --------------------------------------------------------------------------

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"row1", "1"});
  t.add_row("row22", {3.14159}, 2);
  std::ostringstream out;
  t.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("3.14"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
}

}  // namespace
}  // namespace fs2
